package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(nil))
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var msg map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&msg)
		t.Fatalf("%s %s: status %d, want %d (%v)", method, url, resp.StatusCode, wantStatus, msg)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
}

func uploadCommunity(t *testing.T, ts *httptest.Server, name string, users [][]int32) int64 {
	t.Helper()
	var info CommunityInfo
	doJSON(t, "POST", ts.URL+"/communities",
		CommunityPayload{Name: name, Category: -1, Users: users},
		http.StatusCreated, &info)
	if info.Size != len(users) {
		t.Fatalf("uploaded size %d, want %d", info.Size, len(users))
	}
	return info.ID
}

func randUsers(rng *rand.Rand, n, d int, maxVal int32) [][]int32 {
	users := make([][]int32, n)
	for i := range users {
		u := make([]int32, d)
		for j := range u {
			u[j] = rng.Int31n(maxVal + 1)
		}
		users[i] = u
	}
	return users
}

func TestHealth(t *testing.T) {
	ts := newTestServer(t)
	var out HealthResponse
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, &out)
	if out.Status != "ok" {
		t.Errorf("health = %+v", out)
	}
	if out.Durability.Enabled {
		t.Errorf("memory-only server reports durability enabled: %+v", out.Durability)
	}
}

func TestCommunityCRUD(t *testing.T) {
	ts := newTestServer(t)
	rng := rand.New(rand.NewSource(1))
	id1 := uploadCommunity(t, ts, "first", randUsers(rng, 10, 3, 5))
	id2 := uploadCommunity(t, ts, "second", randUsers(rng, 20, 3, 5))

	var list []CommunityInfo
	doJSON(t, "GET", ts.URL+"/communities", nil, http.StatusOK, &list)
	if len(list) != 2 || list[0].ID != id1 || list[1].ID != id2 {
		t.Fatalf("list = %+v", list)
	}

	var one CommunityInfo
	doJSON(t, "GET", fmt.Sprintf("%s/communities/%d", ts.URL, id2), nil, http.StatusOK, &one)
	if one.Name != "second" || one.Dim != 3 {
		t.Errorf("got %+v", one)
	}

	doJSON(t, "DELETE", fmt.Sprintf("%s/communities/%d", ts.URL, id1), nil, http.StatusNoContent, nil)
	doJSON(t, "GET", fmt.Sprintf("%s/communities/%d", ts.URL, id1), nil, http.StatusNotFound, nil)
	doJSON(t, "DELETE", fmt.Sprintf("%s/communities/%d", ts.URL, id1), nil, http.StatusNotFound, nil)
	// A malformed id is a syntactically bad request, not a miss.
	doJSON(t, "GET", ts.URL+"/communities/notanumber", nil, http.StatusBadRequest, nil)
}

func TestCreateCommunityRejectsInvalid(t *testing.T) {
	ts := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/communities",
		CommunityPayload{Name: "bad", Users: [][]int32{{1, -2}}},
		http.StatusUnprocessableEntity, nil)
	doJSON(t, "POST", ts.URL+"/communities",
		CommunityPayload{Name: "empty"},
		http.StatusUnprocessableEntity, nil)
	doJSON(t, "POST", ts.URL+"/communities",
		CommunityPayload{Name: "ragged", Users: [][]int32{{1, 2}, {1}}},
		http.StatusUnprocessableEntity, nil)
}

func TestSimilarityEndpoint(t *testing.T) {
	ts := newTestServer(t)
	// The paper's Section 3 example.
	bID := uploadCommunity(t, ts, "B", [][]int32{{3, 4, 2}, {2, 2, 3}})
	aID := uploadCommunity(t, ts, "A", [][]int32{{2, 3, 5}, {2, 3, 1}, {3, 3, 3}})

	var resp SimilarityResponse
	doJSON(t, "POST", ts.URL+"/similarity", SimilarityRequest{
		B: bID, A: aID, Method: "ex-minmax",
		Options: OptionsPayload{Epsilon: 1}, IncludePairs: true,
	}, http.StatusOK, &resp)
	if resp.Similarity != 1.0 || resp.Matched != 2 {
		t.Errorf("similarity = %+v, want 100%% with 2 pairs", resp)
	}
	if len(resp.Pairs) != 2 {
		t.Errorf("pairs = %v, want 2", resp.Pairs)
	}
	if resp.Method != "Ex-MinMax" || resp.SizeB != 2 || resp.SizeA != 3 {
		t.Errorf("metadata = %+v", resp)
	}

	// Swapped pair without orient violates the size precondition.
	doJSON(t, "POST", ts.URL+"/similarity", SimilarityRequest{
		B: aID, A: bID, Method: "ex-minmax", Options: OptionsPayload{Epsilon: 1},
	}, http.StatusConflict, nil)
	// With orient the server fixes the order.
	doJSON(t, "POST", ts.URL+"/similarity", SimilarityRequest{
		B: aID, A: bID, Method: "ex-minmax", Options: OptionsPayload{Epsilon: 1}, Orient: true,
	}, http.StatusOK, &resp)
	if resp.Similarity != 1.0 {
		t.Errorf("oriented similarity = %v, want 1.0", resp.Similarity)
	}

	// Unknown method and unknown community.
	doJSON(t, "POST", ts.URL+"/similarity", SimilarityRequest{
		B: bID, A: aID, Method: "nonsense", Options: OptionsPayload{Epsilon: 1},
	}, http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/similarity", SimilarityRequest{
		B: 9999, A: aID, Method: "ex-minmax",
	}, http.StatusNotFound, nil)
	// Bad matcher name.
	doJSON(t, "POST", ts.URL+"/similarity", SimilarityRequest{
		B: bID, A: aID, Method: "ex-minmax",
		Options: OptionsPayload{Epsilon: 1, Matcher: "magic"},
	}, http.StatusBadRequest, nil)
}

// TestReferenceScanIdentical pins the scan-kernel switches: a
// reference_scan request and a -scan-kernel=reference server
// (Config.ForceReferenceScan) must return exactly what the default SoA
// kernel returns — the switch is a performance ablation, never a
// semantic one.
func TestReferenceScanIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	busers := randUsers(rng, 30, 4, 6)
	ausers := randUsers(rng, 40, 4, 6)
	run := func(ts *httptest.Server, reference bool) SimilarityResponse {
		bID := uploadCommunity(t, ts, "B", busers)
		aID := uploadCommunity(t, ts, "A", ausers)
		var resp SimilarityResponse
		doJSON(t, "POST", ts.URL+"/similarity", SimilarityRequest{
			B: bID, A: aID, Method: "ex-minmax", IncludePairs: true,
			Options: OptionsPayload{Epsilon: 1, ReferenceScan: reference},
		}, http.StatusOK, &resp)
		return resp
	}
	soaTS := newTestServer(t)
	soa := run(soaTS, false)
	ref := run(newTestServer(t), true)
	forcedTS := httptest.NewServer(NewWithConfig(nil, Config{ForceReferenceScan: true}))
	t.Cleanup(forcedTS.Close)
	forced := run(forcedTS, false)
	for name, got := range map[string]SimilarityResponse{"reference_scan": ref, "forced": forced} {
		if got.Similarity != soa.Similarity || got.Matched != soa.Matched ||
			got.Events != soa.Events || len(got.Pairs) != len(soa.Pairs) {
			t.Errorf("%s path diverged from SoA kernel:\ngot  %+v\nwant %+v", name, got, soa)
		}
	}
}

func TestSimilarityAllMethodsAndMatchers(t *testing.T) {
	ts := newTestServer(t)
	rng := rand.New(rand.NewSource(7))
	bID := uploadCommunity(t, ts, "B", randUsers(rng, 40, 5, 8))
	aID := uploadCommunity(t, ts, "A", randUsers(rng, 50, 5, 8))
	for _, method := range []string{
		"ap-baseline", "ap-minmax", "ap-superego",
		"ex-baseline", "ex-minmax", "ex-superego",
	} {
		var resp SimilarityResponse
		doJSON(t, "POST", ts.URL+"/similarity", SimilarityRequest{
			B: bID, A: aID, Method: method,
			Options: OptionsPayload{Epsilon: 1, Matcher: "hk", VerifyInteger: true},
		}, http.StatusOK, &resp)
		if resp.Similarity < 0 || resp.Similarity > 1 {
			t.Errorf("%s: similarity %v out of range", method, resp.Similarity)
		}
	}
}

func TestRankEndpoint(t *testing.T) {
	ts := newTestServer(t)
	rng := rand.New(rand.NewSource(9))
	pivotUsers := randUsers(rng, 60, 4, 6)
	pivot := uploadCommunity(t, ts, "pivot", pivotUsers)
	// A close candidate shares the pivot's users.
	close1 := uploadCommunity(t, ts, "close", append([][]int32{}, pivotUsers...))
	far := uploadCommunity(t, ts, "far", randUsers(rng, 70, 4, 1000))

	var out []RankEntry
	doJSON(t, "POST", ts.URL+"/rank", RankRequest{
		Pivot: pivot, Candidates: []int64{far, close1}, Method: "ex-minmax",
		Options: OptionsPayload{Epsilon: 0},
	}, http.StatusOK, &out)
	if len(out) != 2 {
		t.Fatalf("rank returned %d entries", len(out))
	}
	if out[0].Name != "close" || out[0].Similarity != 1.0 {
		t.Errorf("top entry = %+v, want close at 100%%", out[0])
	}
	doJSON(t, "POST", ts.URL+"/rank", RankRequest{
		Pivot: 424242, Candidates: []int64{far}, Method: "ex-minmax",
	}, http.StatusNotFound, nil)
}

func TestTopKEndpoint(t *testing.T) {
	ts := newTestServer(t)
	rng := rand.New(rand.NewSource(11))
	pivotUsers := randUsers(rng, 50, 4, 6)
	pivot := uploadCommunity(t, ts, "pivot", pivotUsers)
	twin := uploadCommunity(t, ts, "twin", append([][]int32{}, pivotUsers...))
	noise := uploadCommunity(t, ts, "noise", randUsers(rng, 55, 4, 1000))

	var out []TopKEntry
	doJSON(t, "POST", ts.URL+"/topk", TopKRequest{
		Pivot: pivot, Candidates: []int64{noise, twin}, K: 1,
		Options: OptionsPayload{Epsilon: 0},
	}, http.StatusOK, &out)
	if len(out) != 1 || out[0].Name != "twin" || !out[0].Refined || out[0].Exact != 1.0 {
		t.Errorf("topk = %+v, want refined twin at 100%%", out)
	}
	doJSON(t, "POST", ts.URL+"/topk", TopKRequest{
		Pivot: pivot, Candidates: []int64{twin}, K: 0,
	}, http.StatusUnprocessableEntity, nil)
}

func TestMatrixEndpoint(t *testing.T) {
	ts := newTestServer(t)
	rng := rand.New(rand.NewSource(17))
	baseUsers := randUsers(rng, 40, 4, 6)
	base := uploadCommunity(t, ts, "base", baseUsers)
	twin := uploadCommunity(t, ts, "twin", append([][]int32{}, baseUsers...))
	other := uploadCommunity(t, ts, "other", randUsers(rng, 44, 4, 6))
	tiny := uploadCommunity(t, ts, "tiny", randUsers(rng, 5, 4, 6))

	var cells []MatrixCell
	doJSON(t, "POST", ts.URL+"/matrix", MatrixRequest{
		Communities: []int64{base, twin, other, tiny},
		Options:     OptionsPayload{Epsilon: 0, Workers: 3},
	}, http.StatusOK, &cells)
	if len(cells) != 6 { // C(4,2) unordered pairs
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	byPair := map[[2]int64]MatrixCell{}
	for _, c := range cells {
		byPair[[2]int64{c.I, c.J}] = c
	}
	if c := byPair[[2]int64{base, twin}]; c.Similarity != 1.0 || c.Matched != 40 {
		t.Errorf("base/twin cell = %+v, want similarity 1 with 40 matches", c)
	}
	// tiny violates the size precondition against every other community.
	for _, c := range cells {
		if (c.I == tiny || c.J == tiny) && !c.Skipped {
			t.Errorf("cell %+v should be skipped (size precondition)", c)
		}
	}

	// Error paths: too few communities, unknown ID, bad method.
	doJSON(t, "POST", ts.URL+"/matrix", MatrixRequest{
		Communities: []int64{base},
	}, http.StatusUnprocessableEntity, nil)
	doJSON(t, "POST", ts.URL+"/matrix", MatrixRequest{
		Communities: []int64{base, 99999},
	}, http.StatusNotFound, nil)
	doJSON(t, "POST", ts.URL+"/matrix", MatrixRequest{
		Communities: []int64{base, twin}, Method: "nonsense",
	}, http.StatusBadRequest, nil)
}

// TestMatrixEndpointWorkerEquivalence checks the HTTP matrix answer is
// identical for serial and parallel worker counts.
func TestMatrixEndpointWorkerEquivalence(t *testing.T) {
	ts := newTestServer(t)
	rng := rand.New(rand.NewSource(23))
	ids := make([]int64, 5)
	for i := range ids {
		ids[i] = uploadCommunity(t, ts, fmt.Sprintf("c%d", i), randUsers(rng, 30+i, 3, 8))
	}
	run := func(workers int) []MatrixCell {
		var cells []MatrixCell
		doJSON(t, "POST", ts.URL+"/matrix", MatrixRequest{
			Communities: ids, Method: "ap-minmax",
			Options: OptionsPayload{Epsilon: 1, Workers: workers},
		}, http.StatusOK, &cells)
		for i := range cells {
			cells[i].ElapsedMS = 0 // timing differs run to run
		}
		return cells
	}
	serial := run(1)
	for _, w := range []int{2, 7} {
		got := run(w)
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", serial) {
			t.Errorf("workers=%d matrix differs from serial:\n%+v\nvs\n%+v", w, got, serial)
		}
	}
}

func TestIncrementalJoinEndpoints(t *testing.T) {
	ts := newTestServer(t)
	var info JoinInfo
	doJSON(t, "POST", ts.URL+"/joins", JoinRequest{Dim: 3, Epsilon: 1}, http.StatusCreated, &info)
	if info.Dim != 3 || info.SizeB != 0 {
		t.Fatalf("join info = %+v", info)
	}
	joinURL := fmt.Sprintf("%s/joins/%d", ts.URL, info.ID)

	var add JoinUserResponse
	doJSON(t, "POST", joinURL+"/users",
		JoinUserRequest{Side: "B", Vector: []int32{3, 4, 2}}, http.StatusCreated, &add)
	bUID := add.UserID
	doJSON(t, "POST", joinURL+"/users",
		JoinUserRequest{Side: "A", Vector: []int32{3, 3, 3}}, http.StatusCreated, &add)
	if add.State.Matched != 1 {
		t.Fatalf("after two inserts matched = %d, want 1", add.State.Matched)
	}
	if add.State.Similarity == nil || *add.State.Similarity != 1.0 {
		t.Fatalf("similarity = %v, want 1.0", add.State.Similarity)
	}

	// Remove the B user: the join becomes empty on one side.
	var after JoinInfo
	doJSON(t, "DELETE", fmt.Sprintf("%s/users/B/%d", joinURL, bUID), nil, http.StatusOK, &after)
	if after.Matched != 0 || after.SimilarityError == "" {
		t.Fatalf("after removal = %+v", after)
	}

	// Error paths.
	doJSON(t, "POST", joinURL+"/users",
		JoinUserRequest{Side: "X", Vector: []int32{1, 2, 3}}, http.StatusBadRequest, nil)
	doJSON(t, "POST", joinURL+"/users",
		JoinUserRequest{Side: "B", Vector: []int32{1, 2}}, http.StatusUnprocessableEntity, nil)
	doJSON(t, "DELETE", fmt.Sprintf("%s/users/B/%d", joinURL, bUID), nil, http.StatusNotFound, nil)
	doJSON(t, "DELETE", fmt.Sprintf("%s/users/Q/0", joinURL), nil, http.StatusBadRequest, nil)
	doJSON(t, "GET", ts.URL+"/joins/31337", nil, http.StatusNotFound, nil)
	doJSON(t, "POST", ts.URL+"/joins", JoinRequest{Dim: 0, Epsilon: 1}, http.StatusUnprocessableEntity, nil)
}

// The join state endpoint must reflect a longer streaming session and
// always agree with the library's incremental join.
func TestJoinStreamingSession(t *testing.T) {
	ts := newTestServer(t)
	var info JoinInfo
	doJSON(t, "POST", ts.URL+"/joins", JoinRequest{Dim: 2, Epsilon: 1}, http.StatusCreated, &info)
	joinURL := fmt.Sprintf("%s/joins/%d", ts.URL, info.ID)

	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 30; i++ {
		side := "B"
		if i%2 == 0 {
			side = "A"
		}
		v := []int32{rng.Int31n(5), rng.Int31n(5)}
		var add JoinUserResponse
		doJSON(t, "POST", joinURL+"/users",
			JoinUserRequest{Side: side, Vector: v}, http.StatusCreated, &add)
	}
	var state JoinInfo
	doJSON(t, "GET", joinURL, nil, http.StatusOK, &state)
	if state.SizeB != 15 || state.SizeA != 15 {
		t.Fatalf("sizes = %d|%d, want 15|15", state.SizeB, state.SizeA)
	}
	if state.Matched < 1 {
		t.Error("dense small-domain stream should produce matches")
	}
	if state.Similarity == nil {
		t.Errorf("similarity should be defined: %+v", state)
	}
}
