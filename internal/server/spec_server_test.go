package server

import (
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestSpecValidationStatusAndBodies pins the HTTP status and error
// body for every way an epsilon vector or scorer can be semantically
// invalid. These are all 422s — the request is well-formed JSON with
// known fields, the *spec* is what's wrong — and the bodies are part
// of the wire contract (clients match on them to surface actionable
// messages). Part of `make specguard`.
func TestSpecValidationStatusAndBodies(t *testing.T) {
	ts := newTestServer(t)
	rng := rand.New(rand.NewSource(31))
	b := uploadCommunity(t, ts, "b", randUsers(rng, 20, 4, 7))
	a := uploadCommunity(t, ts, "a", randUsers(rng, 24, 4, 7))

	cases := []struct {
		name string
		req  SimilarityRequest
		frag string
	}{
		{"negative epsilon_vec entry",
			SimilarityRequest{B: b, A: a, Method: "exminmax",
				Options: OptionsPayload{EpsilonVec: []int32{1, -2, 0, 1}}},
			"epsilon_vec entry 1 is -2; entries must be >= 0"},
		{"epsilon_vec length mismatch",
			SimilarityRequest{B: b, A: a, Method: "exminmax",
				Options: OptionsPayload{EpsilonVec: []int32{1, 2}}},
			"epsilon vector has 2 entries for 4 dimensions"},
		{"heterogeneous epsilon_vec on a scalar-only method",
			SimilarityRequest{B: b, A: a, Method: "exbaseline",
				Options: OptionsPayload{EpsilonVec: []int32{0, 1, 2, 3}}},
			"per-dimension epsilon requires a MinMax method"},
		{"all-zero scorer",
			SimilarityRequest{B: b, A: a, Method: "exminmax",
				Options: OptionsPayload{Scorer: &ScorerPayload{}}},
			"all weights are zero"},
		{"negative scorer weight",
			SimilarityRequest{B: b, A: a, Method: "exminmax",
				Options: OptionsPayload{Scorer: &ScorerPayload{CSJ: -1, Category: 1}}},
			"weights must be non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body map[string]string
			doJSON(t, "POST", ts.URL+"/similarity", tc.req,
				http.StatusUnprocessableEntity, &body)
			if !strings.Contains(body["error"], tc.frag) {
				t.Errorf("422 body = %q, want it to contain %q", body["error"], tc.frag)
			}
		})
	}

	// An all-equal vector canonicalizes to its scalar before the method
	// gate, so it works even with the scalar-only Baseline family.
	doJSON(t, "POST", ts.URL+"/similarity",
		SimilarityRequest{B: b, A: a, Method: "exbaseline",
			Options: OptionsPayload{EpsilonVec: []int32{1, 1, 1, 1}}},
		http.StatusOK, nil)
}

// TestMatrixSpecWarmCacheNoRebuild is the end-to-end cache-key check:
// a second identical /matrix request with a heterogeneous epsilon_vec
// must rebuild zero prepared views, and a third that differs only in
// scorer must share them too (views depend on the tolerance and part
// count, not the scorer). A digest that drifted across requests, or a
// key that missed the vector, would show up here as extra builds.
func TestMatrixSpecWarmCacheNoRebuild(t *testing.T) {
	srv := New(nil)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	rng := rand.New(rand.NewSource(37))
	ids := make([]int64, 3)
	for i := range ids {
		ids[i] = uploadCommunity(t, ts, "m", randUsers(rng, 10+2*i, 4, 7))
	}

	req := MatrixRequest{Communities: ids, Method: "exminmax",
		Options: OptionsPayload{EpsilonVec: []int32{0, 1, 2, 1}}}
	doJSON(t, "POST", ts.URL+"/matrix", req, http.StatusOK, nil)
	cold := srv.store.CacheStats().Builds
	if cold != int64(len(ids)) {
		t.Fatalf("cold matrix built %d views, want %d", cold, len(ids))
	}

	doJSON(t, "POST", ts.URL+"/matrix", req, http.StatusOK, nil)
	if warm := srv.store.CacheStats().Builds; warm != cold {
		t.Errorf("warm matrix rebuilt views: builds %d -> %d, want unchanged", cold, warm)
	}

	withScorer := req
	withScorer.Options.Scorer = &ScorerPayload{CSJ: 2, Cosine: 1}
	doJSON(t, "POST", ts.URL+"/matrix", withScorer, http.StatusOK, nil)
	if got := srv.store.CacheStats().Builds; got != cold {
		t.Errorf("scorer-only change rebuilt views: builds %d -> %d, want unchanged", cold, got)
	}
}

// TestSimilarityScorerBlendE2E drives the composite scorer over the
// wire with a hand-constructed pair whose blend is exact: eps 0 joins
// nothing (CSJ component 0), the categories agree (overlap 1), and the
// normalized centroids coincide (cosine 1), so weights (2, 1, 1)
// blend to exactly 0.5.
func TestSimilarityScorerBlendE2E(t *testing.T) {
	ts := newTestServer(t)
	var bInfo, aInfo CommunityInfo
	doJSON(t, "POST", ts.URL+"/communities",
		CommunityPayload{Name: "b", Category: 3, Users: [][]int32{{1, 1}}},
		http.StatusCreated, &bInfo)
	doJSON(t, "POST", ts.URL+"/communities",
		CommunityPayload{Name: "a", Category: 3, Users: [][]int32{{0, 2}, {2, 0}}},
		http.StatusCreated, &aInfo)

	req := SimilarityRequest{B: bInfo.ID, A: aInfo.ID, Method: "exminmax",
		Options: OptionsPayload{Scorer: &ScorerPayload{CSJ: 2, Category: 1, Cosine: 1}}}
	var resp SimilarityResponse
	doJSON(t, "POST", ts.URL+"/similarity", req, http.StatusOK, &resp)
	if resp.Blend == nil {
		t.Fatal("scored response has no blend components")
	}
	if resp.Blend.CSJ != 0 || resp.Blend.Category != 1 ||
		math.Abs(resp.Blend.Cosine-1) > 1e-12 {
		t.Errorf("blend = %+v, want {CSJ:0 Category:1 Cosine:1}", resp.Blend)
	}
	if math.Abs(resp.Similarity-0.5) > 1e-12 {
		t.Errorf("similarity = %g, want exactly 0.5", resp.Similarity)
	}

	// Without a scorer the same join reports the plain CSJ score and no
	// blend — the field stays off the wire entirely.
	var plain SimilarityResponse
	doJSON(t, "POST", ts.URL+"/similarity",
		SimilarityRequest{B: bInfo.ID, A: aInfo.ID, Method: "exminmax"},
		http.StatusOK, &plain)
	if plain.Blend != nil {
		t.Errorf("unscored response carries blend %+v", plain.Blend)
	}
	if plain.Similarity != 0 {
		t.Errorf("plain similarity = %g, want 0 (eps 0 matches nothing)", plain.Similarity)
	}
}
