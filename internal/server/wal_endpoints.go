package server

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"strconv"
)

// WAL segment shipping (DESIGN.md §13): a follower replica mirrors
// this server's durable log byte-for-byte by polling /wal/status and
// pulling segment ranges and checkpoint files. The endpoints are only
// registered when a durable log is wired (Config.Durable).

// shipChunkBytes caps one /wal/segments response, so a follower far
// behind streams the backlog in bounded pulls instead of one giant
// response.
const shipChunkBytes = 1 << 20

// handleWALStatus reports the shippable log state: newest checkpoint
// plus every live segment with its current logical size. The snapshot
// is rotation-consistent (taken under the log's lock), which is the
// property the follower's catch-up protocol leans on: if segment N+1
// is listed, segment N's reported size is final.
func (s *Server) handleWALStatus(w http.ResponseWriter, _ *http.Request) {
	st, err := s.cfg.Durable.ShipStatus()
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

// shipSeq parses the {id} path value as a segment/checkpoint sequence.
func shipSeq(r *http.Request) (uint64, error) {
	raw := r.PathValue("id")
	seq, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sequence %q: %w", raw, errMalformedID)
	}
	return seq, nil
}

// handleWALSegment serves up to shipChunkBytes of one segment starting
// at ?offset= (default 0). Reads of the active segment stop at its
// logical size, so a torn frame can never ship. An empty 200 means
// "caught up at that offset"; 404 means the segment was checkpointed
// away (the follower restarts from /wal/status).
func (s *Server) handleWALSegment(w http.ResponseWriter, r *http.Request) {
	seq, err := shipSeq(r)
	if err != nil {
		s.writeLookupErr(w, err)
		return
	}
	var off int64
	if raw := r.URL.Query().Get("offset"); raw != "" {
		off, err = strconv.ParseInt(raw, 10, 64)
		if err != nil || off < 0 {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad offset %q", raw))
			return
		}
	}
	buf := make([]byte, shipChunkBytes)
	n, err := s.cfg.Durable.ReadSegmentAt(seq, off, buf)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.writeErr(w, http.StatusNotFound, fmt.Errorf("no segment %d", seq))
			return
		}
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(n))
	w.WriteHeader(http.StatusOK)
	if _, werr := w.Write(buf[:n]); werr != nil {
		s.logf("shipping segment %d: %v", seq, werr)
	}
}

// handleWALCheckpoint streams one checkpoint file. Checkpoints are
// written atomically and never modified, so the stream is torn-proof.
func (s *Server) handleWALCheckpoint(w http.ResponseWriter, r *http.Request) {
	seq, err := shipSeq(r)
	if err != nil {
		s.writeLookupErr(w, err)
		return
	}
	rc, size, err := s.cfg.Durable.OpenCheckpoint(seq)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.writeErr(w, http.StatusNotFound, fmt.Errorf("no checkpoint %d", seq))
			return
		}
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.WriteHeader(http.StatusOK)
	if _, werr := io.Copy(w, rc); werr != nil {
		s.logf("shipping checkpoint %d: %v", seq, werr)
	}
}
