//go:build !race

// The store-overhead guard (`make storeguard`, mirroring metricsguard):
// the cache-hit prepared Ap path must stay 0 allocs/op end to end —
// snapshot load, two view lookups, and the scratch'd join through the
// public csj.SimilarityPreparedInto API. The hit path is a map lookup,
// an LRU move, an atomic add, and a receive on a closed channel; none
// of it may allocate. Skipped under -race because the detector's
// instrumentation inflates allocation counts (same convention as
// internal/metrics' alloc guard).

package store

import (
	"math/rand"
	"testing"

	csj "github.com/opencsj/csj"
)

func TestStoreCacheHitPreparedApZeroAllocs(t *testing.T) {
	st := New(Config{})
	rng := rand.New(rand.NewSource(42))
	b := mustCreate(t, st, testCommunity("b", rng, 96, 8))
	a := mustCreate(t, st, testCommunity("a", rng, 128, 8))

	const eps = 2
	opts := &csj.Options{Epsilon: eps}
	sc := csj.NewScratch()
	var res csj.Result

	// Warm: build both views and grow the scratch to steady state.
	warm := func() {
		snap := st.Snapshot()
		vb, err := snap.Prepared(b.ID, eps, 0)
		if err != nil {
			t.Fatal(err)
		}
		va, err := snap.Prepared(a.ID, eps, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := csj.SimilarityPreparedInto(vb, va, csj.ApMinMax, opts, sc, &res); err != nil {
			t.Fatal(err)
		}
	}
	warm()

	allocs := testing.AllocsPerRun(200, func() {
		snap := st.Snapshot()
		vb, err := snap.Prepared(b.ID, eps, 0)
		if err != nil {
			panic(err)
		}
		va, err := snap.Prepared(a.ID, eps, 0)
		if err != nil {
			panic(err)
		}
		if err := csj.SimilarityPreparedInto(vb, va, csj.ApMinMax, opts, sc, &res); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cache-hit prepared Ap path allocates %.1f allocs/op, want 0", allocs)
	}
	if len(res.Pairs) == 0 && res.Events.Comparisons() == 0 {
		t.Fatal("guard join did no work; test data is degenerate")
	}
	cs := st.CacheStats()
	if cs.Builds != 2 {
		t.Errorf("builds = %d across the guard loop, want 2 (warmup only)", cs.Builds)
	}
}

// TestStoreCacheHitSpecZeroAllocs extends the guard to spec-keyed
// lookups: a warm PreparedSpec hit with a heterogeneous epsilon vector
// must also be 0 allocs/op. This empirically pins the digest's stack
// encoding buffer (matchspec.go, specDigestStack) — if the encoder or
// canonicalizer started escaping to the heap, every warm spec-keyed
// request would pay for it. Part of `make specguard`.
func TestStoreCacheHitSpecZeroAllocs(t *testing.T) {
	st := New(Config{})
	rng := rand.New(rand.NewSource(43))
	b := mustCreate(t, st, testCommunity("b", rng, 96, 8))
	a := mustCreate(t, st, testCommunity("a", rng, 128, 8))

	spec := csj.MatchSpec{EpsilonVec: []int32{0, 2, 1, 3, 0, 2, 4, 1}}
	opts := &csj.Options{EpsilonVec: spec.EpsilonVec}
	sc := csj.NewScratch()
	var res csj.Result

	warm := func(fail func(error)) {
		snap := st.Snapshot()
		vb, err := snap.PreparedSpec(b.ID, spec)
		if err != nil {
			fail(err)
		}
		va, err := snap.PreparedSpec(a.ID, spec)
		if err != nil {
			fail(err)
		}
		if err := csj.SimilarityPreparedInto(vb, va, csj.ApMinMax, opts, sc, &res); err != nil {
			fail(err)
		}
	}
	warm(func(err error) { t.Fatal(err) })

	allocs := testing.AllocsPerRun(200, func() {
		warm(func(err error) { panic(err) })
	})
	if allocs != 0 {
		t.Errorf("warm spec-keyed hit allocates %.1f allocs/op, want 0", allocs)
	}
	if cs := st.CacheStats(); cs.Builds != 2 {
		t.Errorf("builds = %d across the guard loop, want 2 (warmup only)", cs.Builds)
	}
}

// BenchmarkStoreCacheHitPreparedAp keeps an allocation-reporting
// benchmark alongside the hard guard so regressions show magnitude.
func BenchmarkStoreCacheHitPreparedAp(b *testing.B) {
	st := New(Config{})
	rng := rand.New(rand.NewSource(42))
	cb := mustCreate(b, st, testCommunity("b", rng, 96, 8))
	ca := mustCreate(b, st, testCommunity("a", rng, 128, 8))
	const eps = 2
	opts := &csj.Options{Epsilon: eps}
	sc := csj.NewScratch()
	var res csj.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := st.Snapshot()
		vb, err := snap.Prepared(cb.ID, eps, 0)
		if err != nil {
			b.Fatal(err)
		}
		va, err := snap.Prepared(ca.ID, eps, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := csj.SimilarityPreparedInto(vb, va, csj.ApMinMax, opts, sc, &res); err != nil {
			b.Fatal(err)
		}
	}
}
