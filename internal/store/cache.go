package store

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	csj "github.com/opencsj/csj"
)

// Observer receives prepared-view cache lifecycle events. The server's
// metrics registry implements it; a nil observer disables observation.
type Observer interface {
	// CacheHit fires when a request finds its view already present
	// (ready or still building — it still shares the one build).
	CacheHit()
	// CacheMiss fires when a request finds no view and starts a build.
	CacheMiss()
	// CacheBuild fires once per executed core.Prepare with its duration.
	CacheBuild(d time.Duration)
	// CacheStored fires when a built view is inserted, with its
	// footprint. Stale builds (community deleted mid-build) never store.
	CacheStored(bytes int64)
	// CacheEvicted fires when a view leaves the cache (LRU pressure or
	// invalidation on delete), with its footprint.
	CacheEvicted(bytes int64)
}

// CacheStats is a point-in-time read of the cache counters.
type CacheStats struct {
	Hits         int64
	Misses       int64
	Builds       int64
	Evictions    int64
	EvictedBytes int64
	Bytes        int64
	Entries      int
}

// viewKey identifies one prepared view: a community at a specific
// version under a canonical match spec, identified by its digest
// (csj.MatchSpec.Digest of the scorer-stripped ViewSpec). Canonical
// digesting means requests that spell the same predicate differently —
// parts 0 vs the explicit default, an all-equal epsilon vector vs its
// scalar, specs differing only in scorer — share one view, while the
// injective encoding under the hash keeps distinct specs (for example
// epsilon vectors [1, 23] and [12, 3], which a naive string key could
// both print as "123") on distinct entries.
type viewKey struct {
	id      int64
	version uint64
	digest  csj.SpecDigest
}

// view is one cache slot. ready closes when the build finishes; until
// then pc and err must not be read. elem is non-nil iff the view is
// resident in the LRU list.
type view struct {
	key   viewKey
	ready chan struct{}
	pc    *csj.PreparedCommunity
	err   error
	bytes int64
	elem  *list.Element
}

// cache is the spec-digest-keyed prepared-view cache with singleflight
// build deduplication and LRU byte-capped eviction.
type cache struct {
	maxBytes int64
	obs      Observer

	hits, misses, builds    atomic.Int64
	evictions, evictedBytes atomic.Int64

	mu    sync.Mutex
	views map[viewKey]*view
	lru   *list.List // front = most recently used; resident views only
	bytes int64
	// live maps community id to its current version; a build that
	// finishes after its community was deleted (or the id vanished) is
	// handed to its waiters but never inserted.
	live map[int64]uint64

	// buildHook, when set, runs after miss bookkeeping and before the
	// build, outside the lock. Test seam for deterministic singleflight
	// and stale-build scenarios.
	buildHook func(k viewKey)
}

func newCache(maxBytes int64, obs Observer) *cache {
	return &cache{
		maxBytes: maxBytes,
		obs:      obs,
		views:    map[viewKey]*view{},
		lru:      list.New(),
		live:     map[int64]uint64{},
	}
}

// setLive records id's current version. Called under the store's
// mutation lock on create.
func (c *cache) setLive(id int64, version uint64) {
	c.mu.Lock()
	c.live[id] = version
	c.mu.Unlock()
}

// get returns the prepared view for entry e under the given match
// spec, building it if absent. The key digests the scorer-stripped
// canonical spec (views depend only on tolerance and parts), and the
// digest computation itself is allocation-free for epsilon vectors up
// to ~100 dimensions, keeping the warm hit path at 0 allocs/op.
// Exactly one build runs per uncached key no matter how many requests
// race; the others block on ready and share the result. Build errors
// are returned to every waiter of that build but not cached — the next
// request retries.
func (c *cache) get(e *Entry, spec csj.MatchSpec) (*csj.PreparedCommunity, error) {
	vs := spec.ViewSpec()
	k := viewKey{id: e.ID, version: e.Version, digest: vs.Digest(e.Comm.Dim())}
	c.mu.Lock()
	if v, ok := c.views[k]; ok {
		if v.elem != nil {
			c.lru.MoveToFront(v.elem)
		}
		c.hits.Add(1)
		c.mu.Unlock()
		if c.obs != nil {
			c.obs.CacheHit()
		}
		<-v.ready
		return v.pc, v.err
	}
	v := &view{key: k, ready: make(chan struct{})}
	c.views[k] = v
	c.misses.Add(1)
	hook := c.buildHook
	c.mu.Unlock()
	if c.obs != nil {
		c.obs.CacheMiss()
	}
	if hook != nil {
		hook(k)
	}

	start := time.Now()
	pc, err := csj.Precompute(e.Comm, &csj.Options{Epsilon: vs.Epsilon, EpsilonVec: vs.EpsilonVec, Parts: vs.Parts})
	elapsed := time.Since(start)
	c.builds.Add(1)

	c.mu.Lock()
	v.pc, v.err = pc, err
	close(v.ready)
	if err != nil {
		delete(c.views, k)
		c.mu.Unlock()
		if c.obs != nil {
			c.obs.CacheBuild(elapsed)
		}
		return nil, err
	}
	stored := false
	var evicted []*view
	if c.live[k.id] == k.version {
		v.bytes = pc.Footprint()
		v.elem = c.lru.PushFront(v)
		c.bytes += v.bytes
		stored = true
		evicted = c.evictLocked()
	} else {
		// The community was deleted while we were building: hand the
		// view to the waiters but leave nothing behind in the cache.
		delete(c.views, k)
	}
	c.mu.Unlock()
	if c.obs != nil {
		c.obs.CacheBuild(elapsed)
		if stored {
			c.obs.CacheStored(v.bytes)
		}
		for _, ev := range evicted {
			c.obs.CacheEvicted(ev.bytes)
		}
	}
	return pc, nil
}

// evictLocked drops views from the LRU back until the cache fits the
// byte cap again. The most recently used view always stays resident, so
// one oversized view is served rather than rebuilt forever.
func (c *cache) evictLocked() []*view {
	if c.maxBytes <= 0 {
		return nil
	}
	var out []*view
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		v := c.lru.Back().Value.(*view)
		c.removeLocked(v)
		out = append(out, v)
	}
	return out
}

// removeLocked unlinks a resident view and updates the byte accounting.
func (c *cache) removeLocked(v *view) {
	delete(c.views, v.key)
	c.lru.Remove(v.elem)
	v.elem = nil
	c.bytes -= v.bytes
	c.evictions.Add(1)
	c.evictedBytes.Add(v.bytes)
}

// invalidate drops every resident view of community id and forgets its
// live version, so in-flight builds for it are discarded on completion.
// Called under the store's mutation lock on delete.
func (c *cache) invalidate(id int64) {
	c.mu.Lock()
	delete(c.live, id)
	var dropped []*view
	for k, v := range c.views {
		if k.id != id || v.elem == nil {
			// elem == nil means the build is still in flight; the live
			// check at completion discards it.
			continue
		}
		c.removeLocked(v)
		dropped = append(dropped, v)
	}
	c.mu.Unlock()
	if c.obs != nil {
		for _, v := range dropped {
			c.obs.CacheEvicted(v.bytes)
		}
	}
}

// stats snapshots the counters and occupancy.
func (c *cache) stats() CacheStats {
	c.mu.Lock()
	bytes, entries := c.bytes, c.lru.Len()
	c.mu.Unlock()
	return CacheStats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Builds:       c.builds.Load(),
		Evictions:    c.evictions.Load(),
		EvictedBytes: c.evictedBytes.Load(),
		Bytes:        bytes,
		Entries:      entries,
	}
}
