package store

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	csj "github.com/opencsj/csj"
	"github.com/opencsj/csj/internal/encoding"
)

func TestCacheHitMissAndKeying(t *testing.T) {
	st := New(Config{})
	rng := rand.New(rand.NewSource(10))
	e := mustCreate(t, st, testCommunity("c", rng, 16, 8))
	snap := st.Snapshot()

	v1, err := snap.Prepared(e.ID, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := snap.Prepared(e.ID, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Error("second request for the same view returned a different object")
	}
	// parts 0 and the explicit default are the same canonical key.
	v3, err := snap.Prepared(e.ID, 2, encoding.DefaultParts)
	if err != nil {
		t.Fatal(err)
	}
	if v3 != v1 {
		t.Error("parts=0 and parts=default produced distinct views")
	}
	// A different epsilon is a different view.
	v4, err := snap.Prepared(e.ID, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v4 == v1 {
		t.Error("different epsilon returned the same view")
	}
	cs := st.CacheStats()
	if cs.Misses != 2 || cs.Builds != 2 {
		t.Errorf("misses=%d builds=%d, want 2 and 2", cs.Misses, cs.Builds)
	}
	if cs.Hits != 2 {
		t.Errorf("hits=%d, want 2", cs.Hits)
	}
	if cs.Entries != 2 || cs.Bytes <= 0 {
		t.Errorf("entries=%d bytes=%d, want 2 resident views with positive bytes", cs.Entries, cs.Bytes)
	}
	if _, err := snap.Prepared(e.ID+100, 2, 0); !errors.Is(err, ErrUnknownCommunity) {
		t.Errorf("unknown id error = %v, want ErrUnknownCommunity", err)
	}
}

// TestCacheSingleflight: N concurrent requests for one uncached view
// run exactly one build; the rest count as hits and share the result.
func TestCacheSingleflight(t *testing.T) {
	st := New(Config{})
	rng := rand.New(rand.NewSource(11))
	e := mustCreate(t, st, testCommunity("c", rng, 32, 8))
	snap := st.Snapshot()

	const waiters = 9
	release := make(chan struct{})
	st.cache.buildHook = func(viewKey) {
		// Hold the one build until every waiter has hit the in-flight
		// entry, proving they share it rather than building their own.
		for st.CacheStats().Hits < waiters {
			select {
			case <-release:
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}

	var wg sync.WaitGroup
	results := make([]*csj.PreparedCommunity, waiters+1)
	for i := 0; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := snap.Prepared(e.ID, 1, 0)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		close(release) // unwedge the hook before failing
		t.Fatal("singleflight waiters did not finish")
	}

	cs := st.CacheStats()
	if cs.Builds != 1 || cs.Misses != 1 {
		t.Errorf("builds=%d misses=%d, want exactly one build and one miss", cs.Builds, cs.Misses)
	}
	if cs.Hits != waiters {
		t.Errorf("hits=%d, want %d", cs.Hits, waiters)
	}
	for i, v := range results {
		if v != results[0] {
			t.Fatalf("waiter %d got a different view object", i)
		}
	}
}

// TestCacheEviction: under a byte cap, least-recently-used views are
// dropped — but never the most recent one.
func TestCacheEviction(t *testing.T) {
	st := New(Config{})
	rng := rand.New(rand.NewSource(12))
	e := mustCreate(t, st, testCommunity("c", rng, 32, 8))
	snap := st.Snapshot()

	// Size the cap from a real footprint: room for one view plus a bit,
	// so a second view always overflows.
	probe, err := snap.Prepared(e.ID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	st.cache.maxBytes = probe.Footprint() + probe.Footprint()/2

	for epsInt := 1; epsInt <= 3; epsInt++ {
		if _, err := snap.Prepared(e.ID, int32(epsInt), 0); err != nil {
			t.Fatal(err)
		}
	}
	cs := st.CacheStats()
	if cs.Evictions == 0 || cs.EvictedBytes == 0 {
		t.Fatalf("no evictions under a byte cap: %+v", cs)
	}
	if cs.Entries == 0 {
		t.Error("eviction emptied the cache; the newest view must stay")
	}
	if cs.Bytes > st.cache.maxBytes {
		t.Errorf("resident bytes %d exceed cap %d with evictable entries", cs.Bytes, st.cache.maxBytes)
	}
	// The newest view (eps=3) must still be a hit, not a rebuild.
	builds := cs.Builds
	if _, err := snap.Prepared(e.ID, 3, 0); err != nil {
		t.Fatal(err)
	}
	if got := st.CacheStats().Builds; got != builds {
		t.Errorf("most recent view was evicted and rebuilt (builds %d -> %d)", builds, got)
	}
}

// TestCacheInvalidationOnDelete: deleting a community drops its
// resident views immediately.
func TestCacheInvalidationOnDelete(t *testing.T) {
	st := New(Config{})
	rng := rand.New(rand.NewSource(13))
	e := mustCreate(t, st, testCommunity("c", rng, 16, 8))
	other := mustCreate(t, st, testCommunity("d", rng, 16, 8))
	snap := st.Snapshot()
	if _, err := snap.Prepared(e.ID, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Prepared(other.ID, 1, 0); err != nil {
		t.Fatal(err)
	}
	if !mustDelete(t, st, e.ID) {
		t.Fatal("Delete failed")
	}
	cs := st.CacheStats()
	if cs.Entries != 1 {
		t.Errorf("entries=%d after delete, want 1 (only the surviving community's view)", cs.Entries)
	}
	if cs.Evictions != 1 {
		t.Errorf("evictions=%d after delete, want 1", cs.Evictions)
	}
}

// TestCacheStaleBuildDiscarded: a build that completes after its
// community was deleted is returned to its waiters but never cached.
func TestCacheStaleBuildDiscarded(t *testing.T) {
	st := New(Config{})
	rng := rand.New(rand.NewSource(14))
	e := mustCreate(t, st, testCommunity("c", rng, 16, 8))
	snap := st.Snapshot() // taken before the delete: still sees e

	deleted := make(chan struct{})
	st.cache.buildHook = func(viewKey) { <-deleted }
	got := make(chan *csj.PreparedCommunity, 1)
	go func() {
		v, err := snap.Prepared(e.ID, 1, 0)
		if err != nil {
			t.Errorf("stale build returned error: %v", err)
		}
		got <- v
	}()
	// Wait for the builder to reach the hook, then delete underneath it.
	for st.CacheStats().Misses == 0 {
		time.Sleep(time.Millisecond)
	}
	if !mustDelete(t, st, e.ID) {
		t.Fatal("Delete failed")
	}
	close(deleted)

	select {
	case v := <-got:
		if v == nil {
			t.Fatal("stale build returned nil view")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stale build never completed")
	}
	cs := st.CacheStats()
	if cs.Entries != 0 {
		t.Errorf("stale build was cached: entries=%d, want 0", cs.Entries)
	}
}

// countingObserver verifies the Observer contract arithmetic.
type countingObserver struct {
	mu                        sync.Mutex
	hits, misses, builds      int64
	storedBytes, evictedBytes int64
	storedCount, evictedCount int64
}

func (o *countingObserver) CacheHit()  { o.mu.Lock(); o.hits++; o.mu.Unlock() }
func (o *countingObserver) CacheMiss() { o.mu.Lock(); o.misses++; o.mu.Unlock() }
func (o *countingObserver) CacheBuild(time.Duration) {
	o.mu.Lock()
	o.builds++
	o.mu.Unlock()
}
func (o *countingObserver) CacheStored(b int64) {
	o.mu.Lock()
	o.storedCount++
	o.storedBytes += b
	o.mu.Unlock()
}
func (o *countingObserver) CacheEvicted(b int64) {
	o.mu.Lock()
	o.evictedCount++
	o.evictedBytes += b
	o.mu.Unlock()
}

func TestObserverMatchesStats(t *testing.T) {
	obs := &countingObserver{}
	st := New(Config{Observer: obs})
	rng := rand.New(rand.NewSource(15))
	e := mustCreate(t, st, testCommunity("c", rng, 16, 8))
	snap := st.Snapshot()
	for i := 0; i < 3; i++ {
		if _, err := snap.Prepared(e.ID, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	mustDelete(t, st, e.ID)

	obs.mu.Lock()
	defer obs.mu.Unlock()
	cs := st.CacheStats()
	if obs.hits != cs.Hits || obs.misses != cs.Misses || obs.builds != cs.Builds {
		t.Errorf("observer hits/misses/builds = %d/%d/%d, stats = %d/%d/%d",
			obs.hits, obs.misses, obs.builds, cs.Hits, cs.Misses, cs.Builds)
	}
	if obs.storedBytes != obs.evictedBytes {
		t.Errorf("stored %d bytes but evicted %d after full invalidation", obs.storedBytes, obs.evictedBytes)
	}
	if obs.storedCount != 1 || obs.evictedCount != 1 {
		t.Errorf("stored/evicted counts = %d/%d, want 1/1", obs.storedCount, obs.evictedCount)
	}
}
