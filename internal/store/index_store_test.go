package store

import (
	"math/rand"
	"sync"
	"testing"

	csj "github.com/opencsj/csj"
)

// Index-maintenance coverage (DESIGN.md §12): every live entry carries
// the pruning summary of exactly its community, through creates,
// deletes, and concurrent snapshot readers.

func TestEntrySummaryBuiltOnCreate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	st := New(Config{}) // IndexBuckets 0 selects the default resolution
	e := mustCreate(t, st, testCommunity("a", rng, 20, 4))
	if e.Summary == nil {
		t.Fatal("created entry has no summary")
	}
	want, err := csj.SummarizeCommunity(e.Comm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Summary.Equal(want) {
		t.Fatal("entry summary differs from a fresh summary of its community")
	}
	if e.Summary.Size() != 20 {
		t.Fatalf("summary size = %d, want 20", e.Summary.Size())
	}
}

func TestEntrySummaryDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	st := New(Config{IndexBuckets: -1})
	if e := mustCreate(t, st, testCommunity("a", rng, 10, 3)); e.Summary != nil {
		t.Fatal("IndexBuckets < 0 must disable summaries")
	}
}

func TestEntrySummaryCustomBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	st := New(Config{IndexBuckets: 4})
	e := mustCreate(t, st, testCommunity("a", rng, 16, 3))
	want, err := csj.SummarizeCommunity(e.Comm, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e.Summary == nil || !e.Summary.Equal(want) {
		t.Fatal("entry summary not built at the configured resolution")
	}
	other, err := csj.SummarizeCommunity(e.Comm, 8)
	if err != nil {
		t.Fatal(err)
	}
	if e.Summary.Equal(other) {
		t.Fatal("summaries of different resolutions must differ")
	}
}

func TestSeedBootRebuildsSummaries(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	st := New(Config{})
	for i := 0; i < 5; i++ {
		mustCreate(t, st, testCommunity("s", rng, 10+i, 4))
	}
	// Reboot from the live image, the recovery path in miniature.
	st.mu.Lock()
	seed := st.seedLocked()
	st.mu.Unlock()
	st2 := New(Config{Seed: seed})
	list, list2 := st.Snapshot().List(), st2.Snapshot().List()
	if len(list2) != len(list) {
		t.Fatalf("rebooted store has %d entries, want %d", len(list2), len(list))
	}
	for i, e := range list {
		if list2[i].Summary == nil || !list2[i].Summary.Equal(e.Summary) {
			t.Fatalf("entry %d: rebooted summary differs from the original", e.ID)
		}
	}
}

// TestSummaryChurnUnderReaders runs create/delete churn against
// concurrent snapshot readers (run under -race via `make race`): every
// entry a reader observes must carry the summary of exactly its
// community, never a neighbor's or a stale one.
func TestSummaryChurnUnderReaders(t *testing.T) {
	st := New(Config{})
	const (
		writers = 4
		readers = 4
		rounds  = 120
	)
	var wgReaders, wgWriters sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wgReaders.Add(1)
		go func() {
			defer wgReaders.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, e := range st.Snapshot().List() {
					if e.Summary == nil {
						t.Errorf("entry %d has no summary", e.ID)
						return
					}
					want, err := csj.SummarizeCommunity(e.Comm, 0)
					if err != nil {
						t.Errorf("entry %d: %v", e.ID, err)
						return
					}
					if !e.Summary.Equal(want) {
						t.Errorf("entry %d: summary does not match its community", e.ID)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wgWriters.Add(1)
		go func(w int) {
			defer wgWriters.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var mine []int64
			for i := 0; i < rounds; i++ {
				if len(mine) > 0 && rng.Intn(3) == 0 {
					id := mine[rng.Intn(len(mine))]
					if _, err := st.Delete(id); err != nil {
						t.Errorf("Delete(%d): %v", id, err)
						return
					}
					continue
				}
				e, err := st.Create(testCommunity("churn", rng, 6+rng.Intn(10), 3))
				if err != nil {
					t.Errorf("Create: %v", err)
					return
				}
				mine = append(mine, e.ID)
			}
		}(w)
	}
	wgWriters.Wait()
	close(stop)
	wgReaders.Wait()
}
