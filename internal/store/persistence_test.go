package store

import (
	"errors"
	"math/rand"
	"testing"

	csj "github.com/opencsj/csj"
)

// stubPersistence rejects appends on demand, so tests can pin the
// append-before-acknowledge contract: a failed append must leave the
// store exactly as it was.
type stubPersistence struct {
	fail    bool
	puts    int
	deletes int
}

var errDiskFull = errors.New("disk full")

func (p *stubPersistence) AppendPut(id int64, version uint64, c *csj.Community) error {
	if p.fail {
		return errDiskFull
	}
	p.puts++
	return nil
}

func (p *stubPersistence) AppendDelete(id int64, version uint64) error {
	if p.fail {
		return errDiskFull
	}
	p.deletes++
	return nil
}

func (p *stubPersistence) CheckpointDue() bool { return false }

func (p *stubPersistence) BeginCheckpoint(seed *Seed) (func() error, error) {
	return func() error { return nil }, nil
}

func (p *stubPersistence) Close() error { return nil }

func TestCreateFailsWhenPersistenceFails(t *testing.T) {
	p := &stubPersistence{}
	st := New(Config{Persistence: p})
	rng := rand.New(rand.NewSource(1))

	e := mustCreate(t, st, testCommunity("ok", rng, 6, 3))
	if p.puts != 1 {
		t.Fatalf("puts = %d, want 1", p.puts)
	}

	p.fail = true
	if _, err := st.Create(testCommunity("doomed", rng, 6, 3)); !errors.Is(err, errDiskFull) {
		t.Fatalf("Create with failing persistence = %v, want errDiskFull", err)
	}
	if st.Len() != 1 {
		t.Errorf("failed Create changed the store: Len = %d, want 1", st.Len())
	}

	// A failed Delete leaves the community in place.
	if _, err := st.Delete(e.ID); !errors.Is(err, errDiskFull) {
		t.Fatalf("Delete with failing persistence = %v, want errDiskFull", err)
	}
	if _, ok := st.Snapshot().Get(e.ID); !ok {
		t.Error("failed Delete removed the community")
	}

	// Once persistence heals, the next mutation reuses the id and
	// version the failed attempt never consumed.
	p.fail = false
	e2 := mustCreate(t, st, testCommunity("healed", rng, 6, 3))
	if e2.ID != e.ID+1 {
		t.Errorf("id after failed create = %d, want %d (failed attempts must not burn ids)", e2.ID, e.ID+1)
	}
	if !mustDelete(t, st, e.ID) {
		t.Error("Delete after heal failed")
	}
	if p.deletes != 1 {
		t.Errorf("deletes = %d, want 1", p.deletes)
	}
}

// TestDeleteOfMissingSkipsPersistence: deleting an absent id is not a
// mutation and must not touch the log.
func TestDeleteOfMissingSkipsPersistence(t *testing.T) {
	p := &stubPersistence{fail: true}
	st := New(Config{Persistence: p})
	ok, err := st.Delete(42)
	if ok || err != nil {
		t.Errorf("Delete(42) on empty store = %v, %v; want false, nil", ok, err)
	}
	if p.deletes != 0 {
		t.Errorf("missing-id delete reached persistence (%d appends)", p.deletes)
	}
}

// TestSeedBootsStore: a store built from a Seed serves the seeded
// communities and continues the id/version sequences.
func TestSeedBootsStore(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := testCommunity("seeded", rng, 6, 3)
	st := New(Config{Seed: &Seed{
		NextID:  7,
		Version: 9,
		Entries: []SeedEntry{{ID: 3, Version: 5, Comm: c}},
	}})
	got, ok := st.Snapshot().Get(3)
	if !ok || got.Comm.Name != "seeded" {
		t.Fatalf("seeded community missing: %v, %v", got, ok)
	}
	if _, err := st.Snapshot().Prepared(3, 1, 0); err != nil {
		t.Errorf("prepared view of a seeded community: %v", err)
	}
	e := mustCreate(t, st, testCommunity("next", rng, 6, 3))
	if e.ID != 8 || e.Version != 10 {
		t.Errorf("post-seed create = (id %d, version %d), want (8, 10)", e.ID, e.Version)
	}
}
