package store_test

import (
	"errors"
	"math/rand"
	"testing"

	csj "github.com/opencsj/csj"
	"github.com/opencsj/csj/internal/durable"
	"github.com/opencsj/csj/internal/faultfs"
	"github.com/opencsj/csj/internal/store"
)

// External test package: the durable log implements store.Persistence,
// and this test pins the one cross-package contract the degraded mode
// hangs on — a poisoned log's sentinel must survive the store's error
// wrapping, so the server's errors.Is(err, durable.ErrPoisoned) check
// can map refused writes to 503 instead of 500.

func poisonedComm(seed int64, n, d int) *csj.Community {
	rng := rand.New(rand.NewSource(seed))
	users := make([]csj.Vector, n)
	for i := range users {
		u := make([]int32, d)
		for j := range u {
			u[j] = rng.Int31n(16)
		}
		users[i] = u
	}
	return &csj.Community{Name: "c", Category: -1, Users: users}
}

func TestFaultStorePoisonedPersistenceKeepsServingReads(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInject(faultfs.OS)
	l, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncAlways, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New(store.Config{Persistence: l, Seed: l.Seed()})

	e, err := st.Create(poisonedComm(1, 8, 3))
	if err != nil {
		t.Fatal(err)
	}

	// Poison: fail the fsync of the next create's append.
	inj.Arm(&faultfs.Fault{At: inj.Ops() + 2, Class: faultfs.EIO})
	if _, err := st.Create(poisonedComm(2, 8, 3)); !errors.Is(err, durable.ErrPoisoned) {
		t.Fatalf("Create through poisoned log = %v, want a wrap of durable.ErrPoisoned", err)
	}
	if _, err := st.Delete(e.ID); !errors.Is(err, durable.ErrPoisoned) {
		t.Fatalf("Delete through poisoned log = %v, want a wrap of durable.ErrPoisoned", err)
	}

	// The failed mutations changed nothing: the snapshot still serves
	// the acknowledged community, and prepared views still build.
	snap := st.Snapshot()
	if got, ok := snap.Get(e.ID); !ok || got.Comm.Name != "c" {
		t.Errorf("snapshot lost community %d after refused mutations", e.ID)
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d, want 1", st.Len())
	}
	if _, err := snap.Prepared(e.ID, 1, 0); err != nil {
		t.Errorf("prepared view on degraded store: %v", err)
	}

	// Explicit checkpoints are refused too (never silently dropped).
	if err := st.Checkpoint(); !errors.Is(err, durable.ErrPoisoned) {
		t.Errorf("Checkpoint on poisoned log = %v, want a wrap of durable.ErrPoisoned", err)
	}
	if err := st.Close(); err != nil {
		t.Errorf("Close of store over poisoned log = %v, want nil", err)
	}
}
