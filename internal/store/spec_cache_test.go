package store

import (
	"math/rand"
	"testing"

	csj "github.com/opencsj/csj"
)

// TestSpecKeyedCacheSharing pins the canonical-spec keying of the view
// cache: every spelling of the same predicate — scalar vs all-equal
// vector, parts 0 vs the explicit default, with or without a scorer —
// lands on one cached view and one build.
func TestSpecKeyedCacheSharing(t *testing.T) {
	st := New(Config{})
	rng := rand.New(rand.NewSource(20))
	e := mustCreate(t, st, testCommunity("c", rng, 16, 4))
	snap := st.Snapshot()

	v1, err := snap.PreparedSpec(e.ID, csj.MatchSpec{Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	sameSpecs := []csj.MatchSpec{
		{EpsilonVec: []int32{2, 2, 2, 2}},
		{Epsilon: 2, Parts: csj.DefaultParts},
		{Epsilon: 2, Scorer: &csj.ScorerSpec{CSJWeight: 1, CosineWeight: 1}},
		{Epsilon: 2, Scorer: &csj.ScorerSpec{CSJWeight: 5}}, // no-op scorer
	}
	for _, spec := range sameSpecs {
		v, err := snap.PreparedSpec(e.ID, spec)
		if err != nil {
			t.Fatal(err)
		}
		if v != v1 {
			t.Errorf("spec %+v built a distinct view; want the canonical shared one", spec)
		}
	}
	if cs := st.CacheStats(); cs.Builds != 1 {
		t.Errorf("builds = %d, want 1 shared build across equivalent spellings", cs.Builds)
	}

	// A genuinely heterogeneous vector is a different view.
	v2, err := snap.PreparedSpec(e.ID, csj.MatchSpec{EpsilonVec: []int32{2, 2, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if v2 == v1 {
		t.Error("heterogeneous vector shared the scalar view")
	}
	if cs := st.CacheStats(); cs.Builds != 2 {
		t.Errorf("builds = %d, want 2 after a distinct vector spec", cs.Builds)
	}
}

// TestSpecKeyedCacheCollisionResistance: two specs whose naive string
// encodings collide (epsilon vectors [1, 23] and [12, 3] both print
// "123" when entries are concatenated) must map to distinct cache
// entries — the digest's length-prefixed fixed-width encoding is
// injective, so no two canonical specs can alias.
func TestSpecKeyedCacheCollisionResistance(t *testing.T) {
	st := New(Config{})
	rng := rand.New(rand.NewSource(21))
	e := mustCreate(t, st, testCommunity("c", rng, 12, 2))
	snap := st.Snapshot()

	va, err := snap.PreparedSpec(e.ID, csj.MatchSpec{EpsilonVec: []int32{1, 23}})
	if err != nil {
		t.Fatal(err)
	}
	vb, err := snap.PreparedSpec(e.ID, csj.MatchSpec{EpsilonVec: []int32{12, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if va == vb {
		t.Fatal("colliding naive encodings shared one cache entry")
	}
	if cs := st.CacheStats(); cs.Builds != 2 || cs.Entries != 2 {
		t.Errorf("builds=%d entries=%d, want 2 distinct views", cs.Builds, cs.Entries)
	}
}

// TestSpecDigestStability: the digest of a fixed spec must not drift
// between calls or store instances — a drifting digest would silently
// turn every warm request into a rebuild.
func TestSpecDigestStability(t *testing.T) {
	spec := csj.MatchSpec{EpsilonVec: []int32{0, 4, 1}, Parts: 2,
		Scorer: &csj.ScorerSpec{CSJWeight: 2, CategoryWeight: 1}}
	d1 := spec.Digest(3)
	for i := 0; i < 100; i++ {
		if spec.Digest(3) != d1 {
			t.Fatal("digest drifted between calls")
		}
	}
	if spec.Digest(4) == d1 {
		t.Fatal("digest ignores dimensionality")
	}
	if len(d1.String()) != 64 {
		t.Fatalf("digest hex is %d chars, want 64", len(d1.String()))
	}
}
