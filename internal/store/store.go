// Package store owns the communities behind the HTTP service: an
// in-memory Store of immutable, deep-copied communities with
// monotonically increasing versions, copy-on-write snapshots (a join
// always runs against a consistent view even while concurrent creates
// and deletes land), and a lazily built, epsilon+parts-keyed cache of
// prepared MinMax views shared by every request (see cache.go). It
// turns encoding into a once-per-(community, version, epsilon, parts)
// cost amortized across all requests — "index once, probe many" — so
// a warmed-up /matrix performs zero core.Prepare calls (DESIGN.md §10).
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	csj "github.com/opencsj/csj"
)

// ErrUnknownCommunity reports a community id absent from a snapshot.
var ErrUnknownCommunity = errors.New("store: unknown community")

// Config parameterizes a Store.
type Config struct {
	// MaxCacheBytes caps the prepared-view cache's approximate resident
	// bytes (csj.PreparedCommunity.Footprint accounting); <= 0 removes
	// the cap. The most recently used view is never evicted, so a single
	// view larger than the cap is served rather than thrashed.
	MaxCacheBytes int64
	// Observer receives cache lifecycle callbacks; nil disables
	// observation. Callbacks fire concurrently from request goroutines
	// and must be safe for concurrent use.
	Observer Observer
}

// Entry is one stored community. Entries are immutable: the community
// was deep-copied on ingest and must not be mutated by callers.
type Entry struct {
	// ID identifies the community; ids are never reused.
	ID int64
	// Version is the store-wide mutation counter value at ingest; it
	// keys the prepared-view cache so a view can never outlive the
	// community state it encodes.
	Version uint64
	// Comm is the deep-copied community.
	Comm *csj.Community
}

// Store holds communities behind copy-on-write snapshots. All methods
// are safe for concurrent use; reads (Snapshot) are wait-free.
type Store struct {
	cache *cache

	mu      sync.Mutex // serializes mutations; never held by readers
	nextID  int64
	version uint64
	snap    atomic.Pointer[Snapshot]
}

// New returns an empty store.
func New(cfg Config) *Store {
	s := &Store{cache: newCache(cfg.MaxCacheBytes, cfg.Observer)}
	s.snap.Store(&Snapshot{store: s, entries: map[int64]*Entry{}})
	return s
}

// Create deep-copies the community into the store and returns its
// entry. The caller keeps full ownership of c; later mutations of it
// cannot reach the stored copy.
func (s *Store) Create(c *csj.Community) *Entry {
	clone := c.Clone()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.version++
	e := &Entry{ID: s.nextID, Version: s.version, Comm: clone}
	s.cache.setLive(e.ID, e.Version)
	s.publishLocked(func(m map[int64]*Entry) { m[e.ID] = e })
	return e
}

// Delete removes the community and invalidates its cached views.
// Snapshots taken before the delete still see the entry (and may keep
// joining it); only new snapshots observe the removal.
func (s *Store) Delete(id int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.snap.Load().entries[id]; !ok {
		return false
	}
	s.version++
	s.cache.invalidate(id)
	s.publishLocked(func(m map[int64]*Entry) { delete(m, id) })
	return true
}

// publishLocked installs a new snapshot derived from the current one by
// mutate. Callers must hold s.mu.
func (s *Store) publishLocked(mutate func(map[int64]*Entry)) {
	old := s.snap.Load()
	m := make(map[int64]*Entry, len(old.entries)+1)
	for k, v := range old.entries {
		m[k] = v
	}
	mutate(m)
	list := make([]*Entry, 0, len(m))
	for _, e := range m {
		list = append(list, e)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
	s.snap.Store(&Snapshot{store: s, entries: m, list: list})
}

// Snapshot returns the current consistent view. The snapshot never
// changes after it is returned: concurrent creates and deletes publish
// new snapshots instead of mutating this one, so a batch join can
// resolve and join many communities from one snapshot without ever
// seeing a half-applied mutation.
func (s *Store) Snapshot() *Snapshot { return s.snap.Load() }

// Len returns the number of stored communities.
func (s *Store) Len() int { return len(s.snap.Load().entries) }

// CacheStats returns the prepared-view cache's counters and occupancy.
func (s *Store) CacheStats() CacheStats { return s.cache.stats() }

// Snapshot is an immutable point-in-time view of the store.
type Snapshot struct {
	store   *Store
	entries map[int64]*Entry
	list    []*Entry // ascending ID
}

// Get returns the entry for id, if present.
func (sn *Snapshot) Get(id int64) (*Entry, bool) {
	e, ok := sn.entries[id]
	return e, ok
}

// Len returns the number of communities in the snapshot.
func (sn *Snapshot) Len() int { return len(sn.entries) }

// List returns the entries in ascending id order. The slice is shared
// by every caller of this snapshot and must not be mutated.
func (sn *Snapshot) List() []*Entry { return sn.list }

// Prepared returns the cached MinMax view of community id under the
// given epsilon and parts (0 parts selects the encoder default),
// building and caching it on first use. Concurrent requests for the
// same uncached view share a single build. The view belongs to the
// entry's version: a racing delete cannot leave a stale view behind.
//
// The cache-hit path performs zero allocations (see `make storeguard`).
func (sn *Snapshot) Prepared(id int64, eps int32, parts int) (*csj.PreparedCommunity, error) {
	e, ok := sn.entries[id]
	if !ok {
		return nil, fmt.Errorf("%w %d", ErrUnknownCommunity, id)
	}
	return sn.store.cache.get(e, eps, parts)
}
