// Package store owns the communities behind the HTTP service: an
// in-memory Store of immutable, deep-copied communities with
// monotonically increasing versions, copy-on-write snapshots (a join
// always runs against a consistent view even while concurrent creates
// and deletes land), and a lazily built, epsilon+parts-keyed cache of
// prepared MinMax views shared by every request (see cache.go). It
// turns encoding into a once-per-(community, version, epsilon, parts)
// cost amortized across all requests — "index once, probe many" — so
// a warmed-up /matrix performs zero core.Prepare calls (DESIGN.md §10).
//
// A Store is memory-only by default; wiring a Persistence (the
// write-ahead log of internal/durable, DESIGN.md §11) makes every
// mutation durable before it is acknowledged, with the read path —
// snapshots, cached views, the 0-alloc prepared fast path — completely
// untouched.
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	csj "github.com/opencsj/csj"
)

// ErrUnknownCommunity reports a community id absent from a snapshot.
var ErrUnknownCommunity = errors.New("store: unknown community")

// ErrDuplicateID reports a CreateWithID collision with a live entry.
var ErrDuplicateID = errors.New("store: duplicate community id")

// Persistence is the optional durability hook under the store,
// implemented by internal/durable.Log. The store appends every
// mutation *before* applying it — an append error means the mutation
// never happened — and drives checkpoints through BeginCheckpoint so
// the rotation point is exactly consistent with the seed it hands
// over. All methods must be safe for concurrent use.
type Persistence interface {
	// AppendPut logs a community ingest under the id and version the
	// mutation will carry.
	AppendPut(id int64, version uint64, c *csj.Community) error
	// AppendDelete logs a community removal.
	AppendDelete(id int64, version uint64) error
	// CheckpointDue reports that enough writes accumulated for an
	// automatic checkpoint; cheap, polled after every mutation.
	CheckpointDue() bool
	// BeginCheckpoint is called under the store's mutation lock with
	// seed equal to the exact current state; it must return quickly
	// (rotate, don't write) and hand back a commit closure the store
	// runs outside the lock to durably install the checkpoint.
	BeginCheckpoint(seed *Seed) (commit func() error, err error)
	// Close flushes and releases the persistence layer. The store's
	// Close forwards here; mutation traffic must be drained first.
	Close() error
}

// Seed is a full store image: what a Persistence hands back after
// recovery, and what the store hands to BeginCheckpoint. NextID and
// Version persist independently of Entries so ids are never reused and
// versions never regress, even across deletes of the newest community.
type Seed struct {
	NextID  int64
	Version uint64
	Entries []SeedEntry // ascending ID
}

// SeedEntry is one community of a Seed. The store takes ownership of
// Comm when seeding (recovery output is never aliased by callers).
type SeedEntry struct {
	ID      int64
	Version uint64
	Comm    *csj.Community
}

// Config parameterizes a Store.
type Config struct {
	// MaxCacheBytes caps the prepared-view cache's approximate resident
	// bytes (csj.PreparedCommunity.Footprint accounting); <= 0 removes
	// the cap. The most recently used view is never evicted, so a single
	// view larger than the cap is served rather than thrashed.
	MaxCacheBytes int64
	// Observer receives cache lifecycle callbacks; nil disables
	// observation. Callbacks fire concurrently from request goroutines
	// and must be safe for concurrent use.
	Observer Observer
	// Persistence, when non-nil, makes every mutation durable before it
	// is applied or acknowledged (DESIGN.md §11). Nil keeps the store
	// memory-only with zero overhead.
	Persistence Persistence
	// Seed, when non-nil, is the recovered image the store boots from
	// (Persistence recovery output). Entries must be sorted by ID.
	Seed *Seed
	// Logf, when non-nil, receives background-failure log lines
	// (checkpoint errors from the automatic checkpoint goroutine).
	Logf func(format string, args ...any)
	// IndexBuckets selects the per-dimension histogram resolution of
	// the pruning summary attached to every entry (DESIGN.md §12): 0
	// selects csj.DefaultIndexBuckets, negative disables summaries
	// entirely. Summaries are pure functions of the community, so they
	// are rebuilt — identically — when a Seed boots the store after
	// recovery; they are never persisted.
	IndexBuckets int
}

// Entry is one stored community. Entries are immutable: the community
// was deep-copied on ingest and must not be mutated by callers.
type Entry struct {
	// ID identifies the community; ids are never reused.
	ID int64
	// Version is the store-wide mutation counter value at ingest; it
	// keys the prepared-view cache so a view can never outlive the
	// community state it encodes.
	Version uint64
	// Comm is the deep-copied community.
	Comm *csj.Community
	// Summary is the community's pruning summary for the envelope index
	// (nil when disabled or when the community cannot be summarized —
	// such entries are simply never pruned). Entries are immutable and
	// replaced wholesale on mutation, so the summary is versioned
	// exactly like the entry: built on Create, dropped with the entry
	// on Delete, rebuilt on the Seed boot path after WAL recovery.
	Summary *csj.CommunitySummary
}

// Store holds communities behind copy-on-write snapshots. All methods
// are safe for concurrent use; reads (Snapshot) are wait-free.
type Store struct {
	cache *cache
	p     Persistence
	logf  func(format string, args ...any)

	// checkpointing gates the automatic background checkpoint goroutine
	// to one at a time; ckptMu serializes it with explicit Checkpoint
	// calls.
	checkpointing atomic.Bool
	ckptMu        sync.Mutex

	mu      sync.Mutex // serializes mutations; never held by readers
	nextID  int64
	version uint64
	snap    atomic.Pointer[Snapshot]

	indexBuckets int // summary resolution; < 0 disables summaries
}

// New returns a store, empty unless cfg.Seed carries a recovered image.
func New(cfg Config) *Store {
	s := &Store{
		cache:        newCache(cfg.MaxCacheBytes, cfg.Observer),
		p:            cfg.Persistence,
		logf:         cfg.Logf,
		indexBuckets: cfg.IndexBuckets,
	}
	entries := map[int64]*Entry{}
	if cfg.Seed != nil {
		s.nextID = cfg.Seed.NextID
		s.version = cfg.Seed.Version
		for _, se := range cfg.Seed.Entries {
			// Recovery rebuild: summaries are pure functions of the
			// community, so the rebuilt index prunes identically to the
			// pre-crash one (pinned by TestRecoveredSummariesPruneIdentically).
			e := &Entry{ID: se.ID, Version: se.Version, Comm: se.Comm,
				Summary: s.summarize(se.Comm)}
			entries[e.ID] = e
			s.cache.setLive(e.ID, e.Version)
		}
	}
	s.snap.Store(newSnapshot(s, entries))
	return s
}

// Create deep-copies the community into the store and returns its
// entry. The caller keeps full ownership of c; later mutations of it
// cannot reach the stored copy. With persistence attached, the
// mutation is appended (and, per the fsync policy, made durable)
// before it is applied: an error means the community was not stored.
func (s *Store) Create(c *csj.Community) (*Entry, error) {
	clone := c.Clone()
	sum := s.summarize(clone) // built outside the lock; O(users*d)
	s.mu.Lock()
	id, version := s.nextID+1, s.version+1
	if s.p != nil {
		if err := s.p.AppendPut(id, version, clone); err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("store: persisting community: %w", err)
		}
	}
	s.nextID, s.version = id, version
	e := &Entry{ID: id, Version: version, Comm: clone, Summary: sum}
	s.cache.setLive(e.ID, e.Version)
	s.publishLocked(func(m map[int64]*Entry) { m[e.ID] = e })
	s.mu.Unlock()
	s.maybeCheckpoint()
	return e, nil
}

// CreateWithID ingests a community under a caller-chosen id — the
// cluster coordinator's write path (DESIGN.md §13), where ids are
// assigned centrally so they stay unique across shards. Same
// durability contract as Create: with persistence attached, the
// mutation is appended before it is applied. The id must be positive
// and not currently stored; nextID ratchets to at least id so a later
// locally assigned id can never collide with a coordinator-assigned
// one.
func (s *Store) CreateWithID(id int64, c *csj.Community) (*Entry, error) {
	if id <= 0 {
		return nil, fmt.Errorf("store: community id must be positive, got %d", id)
	}
	clone := c.Clone()
	sum := s.summarize(clone)
	s.mu.Lock()
	if _, ok := s.snap.Load().entries[id]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: community %d", ErrDuplicateID, id)
	}
	version := s.version + 1
	if s.p != nil {
		if err := s.p.AppendPut(id, version, clone); err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("store: persisting community: %w", err)
		}
	}
	if id > s.nextID {
		s.nextID = id
	}
	s.version = version
	e := &Entry{ID: id, Version: version, Comm: clone, Summary: sum}
	s.cache.setLive(e.ID, e.Version)
	s.publishLocked(func(m map[int64]*Entry) { m[e.ID] = e })
	s.mu.Unlock()
	s.maybeCheckpoint()
	return e, nil
}

// Delete removes the community and invalidates its cached views.
// Snapshots taken before the delete still see the entry (and may keep
// joining it); only new snapshots observe the removal. With
// persistence attached the removal is appended first: an error means
// the community is still there.
func (s *Store) Delete(id int64) (bool, error) {
	s.mu.Lock()
	if _, ok := s.snap.Load().entries[id]; !ok {
		s.mu.Unlock()
		return false, nil
	}
	version := s.version + 1
	if s.p != nil {
		if err := s.p.AppendDelete(id, version); err != nil {
			s.mu.Unlock()
			return false, fmt.Errorf("store: persisting delete of community %d: %w", id, err)
		}
	}
	s.version = version
	s.cache.invalidate(id)
	s.publishLocked(func(m map[int64]*Entry) { delete(m, id) })
	s.mu.Unlock()
	s.maybeCheckpoint()
	return true, nil
}

// summarize builds an entry's pruning summary, or nil when summaries
// are disabled or the community cannot be summarized (e.g. empty) —
// the index then simply never prunes that entry.
func (s *Store) summarize(c *csj.Community) *csj.CommunitySummary {
	if s.indexBuckets < 0 {
		return nil
	}
	sum, err := csj.SummarizeCommunity(c, s.indexBuckets)
	if err != nil {
		return nil
	}
	return sum
}

// publishLocked installs a new snapshot derived from the current one by
// mutate. Callers must hold s.mu.
func (s *Store) publishLocked(mutate func(map[int64]*Entry)) {
	old := s.snap.Load()
	m := make(map[int64]*Entry, len(old.entries)+1)
	for k, v := range old.entries {
		m[k] = v
	}
	mutate(m)
	s.snap.Store(newSnapshot(s, m))
}

func newSnapshot(s *Store, m map[int64]*Entry) *Snapshot {
	list := make([]*Entry, 0, len(m))
	for _, e := range m {
		list = append(list, e)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
	return &Snapshot{store: s, entries: m, list: list}
}

// seedLocked captures the exact current state as a Seed. Entry
// communities are shared, not copied — they are immutable. Callers
// must hold s.mu.
func (s *Store) seedLocked() *Seed {
	list := s.snap.Load().list
	seed := &Seed{NextID: s.nextID, Version: s.version}
	seed.Entries = make([]SeedEntry, len(list))
	for i, e := range list {
		seed.Entries[i] = SeedEntry{ID: e.ID, Version: e.Version, Comm: e.Comm}
	}
	return seed
}

// maybeCheckpoint starts one background checkpoint when the
// persistence layer says it is due.
func (s *Store) maybeCheckpoint() {
	if s.p == nil || !s.p.CheckpointDue() {
		return
	}
	if !s.checkpointing.CompareAndSwap(false, true) {
		return // one automatic checkpoint at a time
	}
	go func() {
		defer s.checkpointing.Store(false)
		if err := s.Checkpoint(); err != nil {
			if s.logf != nil {
				s.logf("store: background checkpoint failed: %v", err)
			}
		}
	}()
}

// Checkpoint durably snapshots the current state into the persistence
// layer and lets it collect the superseded WAL. A no-op without
// persistence. Mutations are only blocked for the segment rotation,
// not for the checkpoint write itself.
func (s *Store) Checkpoint() error {
	if s.p == nil {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	s.mu.Lock()
	seed := s.seedLocked()
	commit, err := s.p.BeginCheckpoint(seed)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return commit()
}

// Close flushes and closes the persistence layer (a no-op for a
// memory-only store). Callers must drain mutation traffic first: the
// HTTP server shuts down before its store closes, so a SIGTERM during
// ingest can never drop an acknowledged Put.
func (s *Store) Close() error {
	if s.p == nil {
		return nil
	}
	return s.p.Close()
}

// Snapshot returns the current consistent view. The snapshot never
// changes after it is returned: concurrent creates and deletes publish
// new snapshots instead of mutating this one, so a batch join can
// resolve and join many communities from one snapshot without ever
// seeing a half-applied mutation.
func (s *Store) Snapshot() *Snapshot { return s.snap.Load() }

// Len returns the number of stored communities.
func (s *Store) Len() int { return len(s.snap.Load().entries) }

// CacheStats returns the prepared-view cache's counters and occupancy.
func (s *Store) CacheStats() CacheStats { return s.cache.stats() }

// Snapshot is an immutable point-in-time view of the store.
type Snapshot struct {
	store   *Store
	entries map[int64]*Entry
	list    []*Entry // ascending ID
}

// Get returns the entry for id, if present.
func (sn *Snapshot) Get(id int64) (*Entry, bool) {
	e, ok := sn.entries[id]
	return e, ok
}

// Len returns the number of communities in the snapshot.
func (sn *Snapshot) Len() int { return len(sn.entries) }

// List returns the entries in ascending id order. The slice is shared
// by every caller of this snapshot and must not be mutated.
func (sn *Snapshot) List() []*Entry { return sn.list }

// PreparedSpec returns the cached MinMax view of community id under
// the given match spec, building and caching it on first use. The view
// is keyed by the digest of the scorer-stripped canonical spec, so
// specs that spell the same tolerance and part count differently — or
// differ only in scorer — share one view. Concurrent requests for the
// same uncached view share a single build. The view belongs to the
// entry's version: a racing delete cannot leave a stale view behind.
//
// The cache-hit path performs zero allocations, including the spec
// digest (see `make storeguard` and `make specguard`).
func (sn *Snapshot) PreparedSpec(id int64, spec csj.MatchSpec) (*csj.PreparedCommunity, error) {
	e, ok := sn.entries[id]
	if !ok {
		return nil, fmt.Errorf("%w %d", ErrUnknownCommunity, id)
	}
	return sn.store.cache.get(e, spec)
}

// Prepared is PreparedSpec under a scalar epsilon and part count — the
// legacy entry point, equivalent to a spec with no epsilon vector and
// no scorer.
func (sn *Snapshot) Prepared(id int64, eps int32, parts int) (*csj.PreparedCommunity, error) {
	return sn.PreparedSpec(id, csj.MatchSpec{Epsilon: eps, Parts: parts})
}
