package store

import (
	"errors"
	"math/rand"
	"testing"

	csj "github.com/opencsj/csj"
)

// mustCreate ingests a community into a store that has no reason to
// fail (memory-only, or a healthy persistence layer).
func mustCreate(t testing.TB, st *Store, c *csj.Community) *Entry {
	t.Helper()
	e, err := st.Create(c)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return e
}

// mustDelete removes a community, failing the test only on a
// persistence error (the bool result is the caller's to assert).
func mustDelete(t testing.TB, st *Store, id int64) bool {
	t.Helper()
	ok, err := st.Delete(id)
	if err != nil {
		t.Fatalf("Delete(%d): %v", id, err)
	}
	return ok
}

func testCommunity(name string, rng *rand.Rand, n, d int) *csj.Community {
	users := make([]csj.Vector, n)
	for i := range users {
		u := make([]int32, d)
		for j := range u {
			u[j] = rng.Int31n(20)
		}
		users[i] = u
	}
	return &csj.Community{Name: name, Category: -1, Users: users}
}

func TestCreateGetDelete(t *testing.T) {
	st := New(Config{})
	rng := rand.New(rand.NewSource(1))
	e1 := mustCreate(t, st, testCommunity("one", rng, 10, 4))
	e2 := mustCreate(t, st, testCommunity("two", rng, 12, 4))
	if e1.ID == e2.ID {
		t.Fatalf("ids not unique: %d", e1.ID)
	}
	if e2.Version <= e1.Version {
		t.Errorf("versions not monotonic: %d then %d", e1.Version, e2.Version)
	}
	snap := st.Snapshot()
	if got, ok := snap.Get(e1.ID); !ok || got.Comm.Name != "one" {
		t.Fatalf("Get(%d) = %v, %v", e1.ID, got, ok)
	}
	if st.Len() != 2 {
		t.Errorf("Len = %d, want 2", st.Len())
	}
	if !mustDelete(t, st, e1.ID) {
		t.Fatal("Delete returned false for a stored community")
	}
	if mustDelete(t, st, e1.ID) {
		t.Error("second Delete returned true")
	}
	if _, ok := st.Snapshot().Get(e1.ID); ok {
		t.Error("deleted community still visible in a fresh snapshot")
	}
	// Ids are never reused, even after a delete.
	e3 := mustCreate(t, st, testCommunity("three", rng, 8, 4))
	if e3.ID == e1.ID {
		t.Errorf("id %d was reused", e1.ID)
	}
}

func TestListSortedByID(t *testing.T) {
	st := New(Config{})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5; i++ {
		mustCreate(t, st, testCommunity("c", rng, 4, 3))
	}
	list := st.Snapshot().List()
	if len(list) != 5 {
		t.Fatalf("List returned %d entries, want 5", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].ID >= list[i].ID {
			t.Fatalf("List not ascending at %d: %d >= %d", i, list[i-1].ID, list[i].ID)
		}
	}
}

// TestIngestDeepCopy is the aliasing regression: the caller mutates its
// community (both a vector element and the Users slice itself) after
// Create, and the stored copy must be unaffected.
func TestIngestDeepCopy(t *testing.T) {
	st := New(Config{})
	orig := &csj.Community{Name: "alias", Category: -1, Users: []csj.Vector{{1, 2, 3}, {4, 5, 6}}}
	e := mustCreate(t, st, orig)

	orig.Users[0][0] = 99
	orig.Users[1] = []int32{7, 8, 9}
	orig.Users = orig.Users[:1]
	orig.Name = "mutated"

	got, ok := st.Snapshot().Get(e.ID)
	if !ok {
		t.Fatal("community vanished")
	}
	if got.Comm.Name != "alias" {
		t.Errorf("stored name = %q, want alias", got.Comm.Name)
	}
	if len(got.Comm.Users) != 2 {
		t.Fatalf("stored community has %d users, want 2", len(got.Comm.Users))
	}
	if got.Comm.Users[0][0] != 1 || got.Comm.Users[1][0] != 4 {
		t.Errorf("stored vectors mutated through the caller's alias: %v", got.Comm.Users)
	}
}

// TestSnapshotIsolation: a snapshot taken before a delete keeps serving
// the deleted community (and its prepared views); only newer snapshots
// observe the removal.
func TestSnapshotIsolation(t *testing.T) {
	st := New(Config{})
	rng := rand.New(rand.NewSource(3))
	e := mustCreate(t, st, testCommunity("doomed", rng, 10, 4))
	old := st.Snapshot()
	if !mustDelete(t, st, e.ID) {
		t.Fatal("Delete failed")
	}
	if _, ok := old.Get(e.ID); !ok {
		t.Error("pre-delete snapshot lost the entry")
	}
	if _, err := old.Prepared(e.ID, 1, 0); err != nil {
		t.Errorf("pre-delete snapshot cannot prepare the entry: %v", err)
	}
	if _, ok := st.Snapshot().Get(e.ID); ok {
		t.Error("post-delete snapshot still has the entry")
	}
}

func TestCreateWithID(t *testing.T) {
	st := New(Config{})
	rng := rand.New(rand.NewSource(7))

	e, err := st.CreateWithID(42, testCommunity("explicit", rng, 10, 4))
	if err != nil {
		t.Fatalf("CreateWithID: %v", err)
	}
	if e.ID != 42 {
		t.Fatalf("ID = %d, want 42", e.ID)
	}
	if got, ok := st.Snapshot().Get(42); !ok || got.Comm.Name != "explicit" {
		t.Fatalf("Get(42) = %v, %v", got, ok)
	}

	// Duplicate ids are rejected with ErrDuplicateID.
	if _, err := st.CreateWithID(42, testCommunity("dup", rng, 8, 4)); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate id error = %v, want ErrDuplicateID", err)
	}
	// Non-positive ids are rejected.
	for _, id := range []int64{0, -1} {
		if _, err := st.CreateWithID(id, testCommunity("bad", rng, 8, 4)); err == nil {
			t.Errorf("CreateWithID(%d) accepted a non-positive id", id)
		}
	}

	// nextID ratchets past explicit ids, so a later locally assigned id
	// can never collide with a coordinator-assigned one.
	e2 := mustCreate(t, st, testCommunity("auto", rng, 9, 4))
	if e2.ID <= 42 {
		t.Errorf("auto id %d did not ratchet past explicit id 42", e2.ID)
	}
	// An explicit id below nextID fills the gap without regressing it.
	if _, err := st.CreateWithID(7, testCommunity("gap", rng, 9, 4)); err != nil {
		t.Fatalf("gap CreateWithID: %v", err)
	}
	e3 := mustCreate(t, st, testCommunity("auto2", rng, 9, 4))
	if e3.ID <= e2.ID {
		t.Errorf("auto id %d regressed after gap-fill (prev %d)", e3.ID, e2.ID)
	}
	// A deleted explicit id stays usable for gap-free re-ingest paths
	// (replica rebuilds): versions still advance monotonically.
	if !mustDelete(t, st, 7) {
		t.Fatal("Delete(7) = false")
	}
	e4, err := st.CreateWithID(7, testCommunity("gap2", rng, 9, 4))
	if err != nil {
		t.Fatalf("re-create after delete: %v", err)
	}
	if e4.Version <= e3.Version {
		t.Errorf("version %d did not advance past %d", e4.Version, e3.Version)
	}
}
