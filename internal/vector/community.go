package vector

import (
	"errors"
	"fmt"
)

// Community is a named set of subscribers (user profiles) of the same
// dimensionality. In the paper's terms a community is a brand page and
// its Users are the page's subscribers.
type Community struct {
	// Name identifies the community (e.g. the brand-page name).
	Name string
	// Category is the index of the community's home category, or -1 when
	// unknown. It is informational only; no algorithm depends on it.
	Category int
	// Users holds one profile vector per subscriber.
	Users []Vector
}

// ErrEmptyCommunity is returned when an operation needs at least one user.
var ErrEmptyCommunity = errors.New("vector: empty community")

// ErrSizeConstraint is returned by CheckSizes when the CSJ precondition
// ceil(|A|/2) <= |B| <= |A| does not hold.
var ErrSizeConstraint = errors.New("vector: CSJ size constraint violated")

// NewCommunity builds a community and validates that all user vectors
// share dimensionality d and hold non-negative counters.
func NewCommunity(name string, d int, users []Vector) (*Community, error) {
	c := &Community{Name: name, Category: -1, Users: users}
	if err := c.Validate(d); err != nil {
		return nil, err
	}
	return c, nil
}

// Size returns the number of subscribers.
func (c *Community) Size() int { return len(c.Users) }

// Dim returns the dimensionality of the community's profiles, or 0 when
// the community is empty.
func (c *Community) Dim() int {
	if len(c.Users) == 0 {
		return 0
	}
	return len(c.Users[0])
}

// Validate checks that the community is non-empty, that every user has
// dimensionality d (d <= 0 means "use the first user's dimensionality"),
// and that all counters are non-negative.
func (c *Community) Validate(d int) error {
	if len(c.Users) == 0 {
		return fmt.Errorf("community %q: %w", c.Name, ErrEmptyCommunity)
	}
	if d <= 0 {
		d = len(c.Users[0])
	}
	for i, u := range c.Users {
		if len(u) != d {
			return fmt.Errorf("community %q user %d: %w: got %d dimensions, want %d",
				c.Name, i, ErrDimensionMismatch, len(u), d)
		}
		if err := u.Validate(); err != nil {
			return fmt.Errorf("community %q user %d: %w", c.Name, i, err)
		}
	}
	return nil
}

// Clone returns a deep copy of the community.
func (c *Community) Clone() *Community {
	users := make([]Vector, len(c.Users))
	for i, u := range c.Users {
		users[i] = u.Clone()
	}
	return &Community{Name: c.Name, Category: c.Category, Users: users}
}

// MaxCounter returns the largest counter over all users and dimensions.
// SuperEGO normalizes by this value (over the union of both communities).
func (c *Community) MaxCounter() int32 {
	var m int32
	for _, u := range c.Users {
		if v := u.Max(); v > m {
			m = v
		}
	}
	return m
}

// TotalLikesPerDim returns, for each dimension, the sum of counters over
// all users. This is the paper's Table 1 "total_likes per category".
func (c *Community) TotalLikesPerDim() []int64 {
	d := c.Dim()
	totals := make([]int64, d)
	for _, u := range c.Users {
		for i, v := range u {
			totals[i] += int64(v)
		}
	}
	return totals
}

// CheckSizes validates the CSJ precondition on a community pair:
// ceil(|A|/2) <= |B| <= |A|, where B is the less-followed community.
// The paper only defines similarity when B is at least half of A;
// otherwise B risks being a trivial subset of A.
func CheckSizes(b, a *Community) error {
	nb, na := b.Size(), a.Size()
	if nb == 0 || na == 0 {
		return ErrEmptyCommunity
	}
	if nb > na {
		return fmt.Errorf("%w: |B|=%d exceeds |A|=%d (B must be the smaller community)",
			ErrSizeConstraint, nb, na)
	}
	if half := (na + 1) / 2; nb < half {
		return fmt.Errorf("%w: |B|=%d is below ceil(|A|/2)=%d", ErrSizeConstraint, nb, half)
	}
	return nil
}
