package vector

import (
	"errors"
	"testing"
)

func mkCommunity(t *testing.T, name string, users ...Vector) *Community {
	t.Helper()
	c, err := NewCommunity(name, 0, users)
	if err != nil {
		t.Fatalf("NewCommunity(%q): %v", name, err)
	}
	return c
}

func TestNewCommunityValidates(t *testing.T) {
	if _, err := NewCommunity("empty", 3, nil); !errors.Is(err, ErrEmptyCommunity) {
		t.Errorf("expected ErrEmptyCommunity, got %v", err)
	}
	if _, err := NewCommunity("mixed", 0, []Vector{{1, 2}, {1, 2, 3}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("expected ErrDimensionMismatch, got %v", err)
	}
	if _, err := NewCommunity("neg", 0, []Vector{{1, -2}}); !errors.Is(err, ErrNegativeCounter) {
		t.Errorf("expected ErrNegativeCounter, got %v", err)
	}
	if _, err := NewCommunity("wrongd", 3, []Vector{{1, 2}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("expected ErrDimensionMismatch for explicit d, got %v", err)
	}
	c, err := NewCommunity("ok", 2, []Vector{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if c.Size() != 2 || c.Dim() != 2 {
		t.Errorf("Size=%d Dim=%d, want 2, 2", c.Size(), c.Dim())
	}
}

func TestCommunityCloneIsDeep(t *testing.T) {
	c := mkCommunity(t, "c", Vector{1, 2}, Vector{3, 4})
	c.Category = 7
	cl := c.Clone()
	cl.Users[0][0] = 99
	cl.Name = "other"
	if c.Users[0][0] != 1 || c.Name != "c" {
		t.Error("Clone is not a deep copy")
	}
	if cl.Category != 7 {
		t.Error("Clone should preserve Category")
	}
}

func TestMaxCounterAndTotals(t *testing.T) {
	c := mkCommunity(t, "c", Vector{1, 20}, Vector{30, 4})
	if got := c.MaxCounter(); got != 30 {
		t.Errorf("MaxCounter = %d, want 30", got)
	}
	totals := c.TotalLikesPerDim()
	if len(totals) != 2 || totals[0] != 31 || totals[1] != 24 {
		t.Errorf("TotalLikesPerDim = %v, want [31 24]", totals)
	}
}

func TestCheckSizes(t *testing.T) {
	tests := []struct {
		name   string
		nb, na int
		ok     bool
	}{
		{"equal sizes", 10, 10, true},
		{"exact half even", 5, 10, true},
		{"exact ceil half odd", 6, 11, true},
		{"below ceil half odd", 5, 11, false},
		{"below half", 4, 10, false},
		{"B larger than A", 11, 10, false},
		{"singletons", 1, 1, true},
		{"1 vs 2", 1, 2, true},
		{"1 vs 3", 1, 3, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			mk := func(n int) *Community {
				users := make([]Vector, n)
				for i := range users {
					users[i] = Vector{int32(i)}
				}
				return &Community{Name: "x", Users: users}
			}
			err := CheckSizes(mk(tc.nb), mk(tc.na))
			if tc.ok && err != nil {
				t.Errorf("CheckSizes(%d, %d) = %v, want nil", tc.nb, tc.na, err)
			}
			if !tc.ok && !errors.Is(err, ErrSizeConstraint) {
				t.Errorf("CheckSizes(%d, %d) = %v, want ErrSizeConstraint", tc.nb, tc.na, err)
			}
		})
	}
}

func TestCheckSizesEmpty(t *testing.T) {
	empty := &Community{Name: "e"}
	nonEmpty := mkCommunity(t, "x", Vector{1})
	if err := CheckSizes(empty, nonEmpty); !errors.Is(err, ErrEmptyCommunity) {
		t.Errorf("expected ErrEmptyCommunity, got %v", err)
	}
	if err := CheckSizes(nonEmpty, empty); !errors.Is(err, ErrEmptyCommunity) {
		t.Errorf("expected ErrEmptyCommunity, got %v", err)
	}
}
