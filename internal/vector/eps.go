package vector

import (
	"errors"
	"fmt"
)

// ErrNegativeEpsilon is returned by Eps.Validate when any tolerance
// entry (scalar or per-dimension) is negative.
var ErrNegativeEpsilon = errors.New("vector: negative epsilon")

// Eps is the matching tolerance of the CSJ per-dimension condition in
// canonical form: either one scalar applied uniformly to every
// dimension (the paper's epsilon) or an explicit per-dimension vector.
// The zero value is "exact match in every dimension" (epsilon 0).
//
// The canonical-form invariant — an all-equal vector is stored as its
// scalar — is maintained by NewEps, which is why an all-equal
// per-dimension request is bit-for-bit the scalar code path everywhere
// downstream: there is no second representation to diverge.
type Eps struct {
	scalar int32
	vec    []int32 // nil when uniform; aliases the caller's slice
}

// UniformEps returns the tolerance matching every dimension within e.
func UniformEps(e int32) Eps { return Eps{scalar: e} }

// NewEps builds a tolerance from a scalar default and an optional
// per-dimension override. A nil/empty vec selects the scalar; a vec
// whose entries are all equal canonicalizes to that scalar. A
// heterogeneous vec is aliased, not copied — callers that mutate it
// afterwards get undefined matching.
func NewEps(scalar int32, vec []int32) Eps {
	if len(vec) == 0 {
		return Eps{scalar: scalar}
	}
	first := vec[0]
	for _, v := range vec[1:] {
		if v != first {
			return Eps{vec: vec}
		}
	}
	return Eps{scalar: first}
}

// Uniform reports whether the tolerance is a single scalar, and which.
func (e Eps) Uniform() (int32, bool) {
	if e.vec == nil {
		return e.scalar, true
	}
	return 0, false
}

// At returns the tolerance of dimension i.
func (e Eps) At(i int) int32 {
	if e.vec == nil {
		return e.scalar
	}
	return e.vec[i]
}

// Vec returns the per-dimension vector, or nil for a uniform tolerance.
func (e Eps) Vec() []int32 { return e.vec }

// Equal reports whether two canonical tolerances match exactly. Thanks
// to the canonical-form invariant this is representation equality:
// a uniform scalar never Equals a heterogeneous vector.
func (e Eps) Equal(o Eps) bool {
	if (e.vec == nil) != (o.vec == nil) {
		return false
	}
	if e.vec == nil {
		return e.scalar == o.scalar
	}
	if len(e.vec) != len(o.vec) {
		return false
	}
	for i, v := range e.vec {
		if v != o.vec[i] {
			return false
		}
	}
	return true
}

// Validate checks the tolerance against profile dimensionality d:
// every entry must be non-negative, and a per-dimension vector must
// have exactly d entries.
func (e Eps) Validate(d int) error {
	if e.vec == nil {
		if e.scalar < 0 {
			return fmt.Errorf("%w: epsilon is %d", ErrNegativeEpsilon, e.scalar)
		}
		return nil
	}
	if len(e.vec) != d {
		return fmt.Errorf("%w: epsilon vector has %d entries for %d dimensions",
			ErrDimensionMismatch, len(e.vec), d)
	}
	for i, v := range e.vec {
		if v < 0 {
			return fmt.Errorf("%w: epsilon vector entry %d is %d", ErrNegativeEpsilon, i, v)
		}
	}
	return nil
}

// MatchEps is MatchEpsilon generalized to a per-dimension tolerance:
// |a_i - b_i| <= eps_i for every dimension i. The uniform case runs the
// exact MatchEpsilon loop, so an all-equal tolerance classifies every
// pair identically to the scalar path. Differences are taken in int64
// for the same overflow reason as MatchEpsilon. Panics on dimension
// mismatch between a and b (tolerance length is validated up front by
// Eps.Validate).
func MatchEps(a, b Vector, eps Eps) bool {
	if eps.vec == nil {
		return MatchEpsilon(a, b, eps.scalar)
	}
	if len(a) != len(b) {
		panic("vector: MatchEps on vectors of different dimensionality")
	}
	for i := range a {
		d := int64(a[i]) - int64(b[i])
		e := int64(eps.vec[i])
		if d > e || d < -e {
			return false
		}
	}
	return true
}
