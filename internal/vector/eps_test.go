package vector

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestNewEpsCanonicalForm pins the canonical-form invariant: nil/empty
// and all-equal vectors collapse to the scalar representation, so an
// all-equal per-dimension request is structurally identical to the
// scalar request everywhere downstream.
func TestNewEpsCanonicalForm(t *testing.T) {
	cases := []struct {
		name       string
		scalar     int32
		vec        []int32
		wantU      int32
		wantUnifrm bool
	}{
		{"nil vec keeps scalar", 3, nil, 3, true},
		{"empty vec keeps scalar", 5, []int32{}, 5, true},
		{"all-equal collapses", 9, []int32{2, 2, 2}, 2, true},
		{"single entry collapses", 9, []int32{7}, 7, true},
		{"heterogeneous stays vector", 9, []int32{1, 2}, 0, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e := NewEps(c.scalar, c.vec)
			u, ok := e.Uniform()
			if ok != c.wantUnifrm || (ok && u != c.wantU) {
				t.Fatalf("Uniform() = (%d, %v), want (%d, %v)", u, ok, c.wantU, c.wantUnifrm)
			}
			if c.wantUnifrm && e.Vec() != nil {
				t.Fatal("uniform tolerance exposes a vector")
			}
		})
	}
}

// TestEpsAtAndEqual pins per-dimension lookup and representation
// equality: a uniform scalar never equals a heterogeneous vector, even
// when they agree on some dimension.
func TestEpsAtAndEqual(t *testing.T) {
	v := NewEps(0, []int32{1, 4, 0})
	for i, want := range []int32{1, 4, 0} {
		if got := v.At(i); got != want {
			t.Fatalf("At(%d) = %d, want %d", i, got, want)
		}
	}
	u := UniformEps(2)
	if u.At(0) != 2 || u.At(99) != 2 {
		t.Fatal("uniform At is not dimension-independent")
	}
	if v.Equal(u) || u.Equal(v) {
		t.Fatal("vector tolerance equals a scalar one")
	}
	if !v.Equal(NewEps(0, []int32{1, 4, 0})) {
		t.Fatal("equal vectors do not compare equal")
	}
	if v.Equal(NewEps(0, []int32{1, 4, 1})) {
		t.Fatal("differing vectors compare equal")
	}
	if v.Equal(NewEps(0, []int32{1, 4})) {
		t.Fatal("different-length vectors compare equal")
	}
	if !UniformEps(3).Equal(NewEps(0, []int32{3, 3})) {
		t.Fatal("all-equal vector does not canonicalize to its scalar")
	}
}

// TestEpsValidate pins the validation errors and their sentinel
// wrapping — the server's 422 bodies surface these messages.
func TestEpsValidate(t *testing.T) {
	if err := UniformEps(-1).Validate(3); !errors.Is(err, ErrNegativeEpsilon) {
		t.Fatalf("negative scalar: %v, want ErrNegativeEpsilon", err)
	}
	if err := NewEps(0, []int32{1, 2}).Validate(3); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("length mismatch: %v, want ErrDimensionMismatch", err)
	}
	if err := NewEps(0, []int32{1, -2, 3}).Validate(3); !errors.Is(err, ErrNegativeEpsilon) {
		t.Fatalf("negative entry: %v, want ErrNegativeEpsilon", err)
	}
	if err := NewEps(0, []int32{1, 0, 3}).Validate(3); err != nil {
		t.Fatalf("valid vector rejected: %v", err)
	}
	if err := UniformEps(0).Validate(0); err != nil {
		t.Fatalf("zero-dim scalar rejected: %v", err)
	}
}

// TestMatchEpsUniformEquivalence: the uniform path must classify every
// pair exactly like the scalar MatchEpsilon predicate.
func TestMatchEpsUniformEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(8)
		a, b := make(Vector, d), make(Vector, d)
		for i := 0; i < d; i++ {
			a[i] = rng.Int31n(20)
			b[i] = rng.Int31n(20)
		}
		eps := rng.Int31n(5)
		if got, want := MatchEps(a, b, UniformEps(eps)), MatchEpsilon(a, b, eps); got != want {
			t.Fatalf("a=%v b=%v eps=%d: MatchEps=%v MatchEpsilon=%v", a, b, eps, got, want)
		}
		vec := make([]int32, d)
		for i := range vec {
			vec[i] = eps
		}
		if got, want := MatchEps(a, b, NewEps(0, vec)), MatchEpsilon(a, b, eps); got != want {
			t.Fatalf("all-equal vec diverges from scalar: a=%v b=%v eps=%d", a, b, eps)
		}
	}
}

// TestMatchEpsPerDimension: each dimension is judged by its own
// tolerance, and the int64 difference never wraps on extremes.
func TestMatchEpsPerDimension(t *testing.T) {
	eps := NewEps(0, []int32{0, 5, 2})
	if !MatchEps(Vector{7, 10, 3}, Vector{7, 5, 1}, eps) {
		t.Fatal("in-tolerance pair rejected")
	}
	if MatchEps(Vector{7, 10, 3}, Vector{8, 10, 3}, eps) {
		t.Fatal("dimension 0 (eps 0) accepted a difference of 1")
	}
	if MatchEps(Vector{7, 10, 3}, Vector{7, 10, 6}, eps) {
		t.Fatal("dimension 2 (eps 2) accepted a difference of 3")
	}
	// Opposite int32 extremes are 2^32-1 apart; int32 subtraction would
	// wrap to -1 and falsely match under any small tolerance.
	wide := NewEps(0, []int32{5, 5})
	if MatchEps(Vector{math.MaxInt32, 0}, Vector{math.MinInt32, 0}, wide) {
		t.Fatal("extreme opposites matched: the per-dimension diff overflowed")
	}
}
