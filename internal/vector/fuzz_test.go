package vector

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary input never panics the CSV parser
// and that everything it accepts round-trips losslessly. The corpus
// seeds the fixed ingest bugs of the hardening pass: the final line
// without a trailing newline, rows wider than the old scanner token
// cap, and negative counters.
func FuzzReadCSV(f *testing.F) {
	f.Add("# category=3 name=X\n1,2,3\n4,5,6\n")
	f.Add("0\n")
	f.Add("1,2\n3,4\n")
	f.Add("")
	f.Add("#\n\n  7 , 8 \n")
	f.Add("9999999999999,1\n")
	f.Add("1,2,3\n4,5,6") // no trailing newline
	f.Add("1,-2\n")       // negative counter
	f.Add("# name=wide\n" + strings.Repeat("7,", 4096) + "7\n")
	f.Add(",\n,\n")
	f.Add("\r\n1,2\r\n")
	f.Fuzz(func(t *testing.T, in string) {
		c, err := ReadCSV(bytes.NewReader([]byte(in)))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, c); err != nil {
			t.Fatalf("WriteCSV of accepted community: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-read of written community: %v", err)
		}
		if !communitiesEqual(c, back) {
			t.Fatal("CSV round trip not lossless")
		}
	})
}

// FuzzReadBinary checks that arbitrary bytes never panic the binary
// parser. The corpus seeds the crafted-header attacks the ingest
// hardening fixed: headers claiming ~2^30 users from a tiny file,
// shapes whose product overflows the payload cap, 0xFFFFFFFF counters
// (int32(-1)), and oversized name lengths.
func FuzzReadBinary(f *testing.F) {
	good := &Community{Name: "x", Category: 3, Users: []Vector{{1, 2}, {3, 4}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, good); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("CSJC\x01"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add(craftBinaryHeader(0, 0, 1<<30, 3, nil))      // huge user-count claim
	f.Add(craftBinaryHeader(0, 0, 1<<26, 1<<6, nil))   // n*d*4 overflows the cap
	f.Add(craftBinaryHeader(1<<30, 0, 1, 1, nil))      // oversized name length
	f.Add(craftBinaryHeader(0, 0xFFFFFFFF, 1, 1, nil)) // category -1
	negCounter := make([]byte, 12)
	binary.LittleEndian.PutUint32(negCounter[0:], 1)
	binary.LittleEndian.PutUint32(negCounter[4:], 0xFFFFFFFF)
	binary.LittleEndian.PutUint32(negCounter[8:], 3)
	f.Add(craftBinaryHeader(0, 0, 1, 3, negCounter)) // negative counter
	f.Add(buf.Bytes()[:len(buf.Bytes())-2])          // truncated payload
	f.Fuzz(func(t *testing.T, in []byte) {
		c, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		if err := c.Validate(0); err != nil {
			t.Fatalf("ReadBinary accepted an invalid community: %v", err)
		}
	})
}

// FuzzMatchEpsilon cross-checks the match predicate against the
// Chebyshev distance on fuzz-provided vectors.
func FuzzMatchEpsilon(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4}, int32(1))
	f.Add([]byte{}, []byte{}, int32(0))
	f.Fuzz(func(t *testing.T, ab, bb []byte, eps int32) {
		if len(ab) != len(bb) || eps < 0 {
			return
		}
		a := make(Vector, len(ab))
		b := make(Vector, len(bb))
		for i := range ab {
			a[i] = int32(ab[i])
			b[i] = int32(bb[i])
		}
		if got, want := MatchEpsilon(a, b, eps), ChebyshevDistance(a, b) <= eps; got != want {
			t.Fatalf("MatchEpsilon=%v but Chebyshev says %v (a=%v b=%v eps=%d)", got, want, a, b, eps)
		}
	})
}
