package vector

import (
	"bytes"
	"testing"
)

// FuzzReadCSV checks that arbitrary input never panics the CSV parser
// and that everything it accepts round-trips losslessly.
func FuzzReadCSV(f *testing.F) {
	f.Add("# category=3 name=X\n1,2,3\n4,5,6\n")
	f.Add("0\n")
	f.Add("1,2\n3,4\n")
	f.Add("")
	f.Add("#\n\n  7 , 8 \n")
	f.Add("9999999999999,1\n")
	f.Fuzz(func(t *testing.T, in string) {
		c, err := ReadCSV(bytes.NewReader([]byte(in)))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, c); err != nil {
			t.Fatalf("WriteCSV of accepted community: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-read of written community: %v", err)
		}
		if !communitiesEqual(c, back) {
			t.Fatal("CSV round trip not lossless")
		}
	})
}

// FuzzReadBinary checks that arbitrary bytes never panic the binary
// parser.
func FuzzReadBinary(f *testing.F) {
	good := &Community{Name: "x", Category: 3, Users: []Vector{{1, 2}, {3, 4}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, good); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("CSJC\x01"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, in []byte) {
		c, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		if err := c.Validate(0); err != nil {
			t.Fatalf("ReadBinary accepted an invalid community: %v", err)
		}
	})
}

// FuzzMatchEpsilon cross-checks the match predicate against the
// Chebyshev distance on fuzz-provided vectors.
func FuzzMatchEpsilon(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4}, int32(1))
	f.Add([]byte{}, []byte{}, int32(0))
	f.Fuzz(func(t *testing.T, ab, bb []byte, eps int32) {
		if len(ab) != len(bb) || eps < 0 {
			return
		}
		a := make(Vector, len(ab))
		b := make(Vector, len(bb))
		for i := range ab {
			a[i] = int32(ab[i])
			b[i] = int32(bb[i])
		}
		if got, want := MatchEpsilon(a, b, eps), ChebyshevDistance(a, b) <= eps; got != want {
			t.Fatalf("MatchEpsilon=%v but Chebyshev says %v (a=%v b=%v eps=%d)", got, want, a, b, eps)
		}
	})
}
