package vector

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The on-disk formats:
//
//   - CSV: one user per line, d comma-separated non-negative integers.
//     A leading "# name=<n> category=<c>" comment line is optional.
//   - Binary: a compact little-endian format with a magic header, used by
//     cmd/csjgen for large generated datasets.

const binaryMagic = "CSJC\x01"

// WriteCSV writes the community in CSV form.
func WriteCSV(w io.Writer, c *Community) error {
	bw := bufio.NewWriter(w)
	// name= consumes the rest of the line so that names may contain spaces.
	if _, err := fmt.Fprintf(bw, "# category=%d name=%s\n", c.Category, csvEscape(c.Name)); err != nil {
		return err
	}
	var sb strings.Builder
	for _, u := range c.Users {
		sb.Reset()
		for i, v := range u {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.FormatInt(int64(v), 10))
		}
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func csvEscape(s string) string {
	return strings.NewReplacer("\n", " ", "\r", " ").Replace(s)
}

// ReadCSV parses a community written by WriteCSV. Blank lines are
// ignored; the first "# name=... category=..." comment, if present, sets
// the community metadata.
func ReadCSV(r io.Reader) (*Community, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	c := &Community{Category: -1}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			parseCSVHeader(text, c)
			continue
		}
		fields := strings.Split(text, ",")
		u := make(Vector, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 32)
			if err != nil {
				return nil, fmt.Errorf("vector: csv line %d field %d: %w", line, i+1, err)
			}
			u[i] = int32(v)
		}
		c.Users = append(c.Users, u)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := c.Validate(0); err != nil {
		return nil, err
	}
	return c, nil
}

func parseCSVHeader(text string, c *Community) {
	text = strings.TrimSpace(strings.TrimPrefix(text, "#"))
	for text != "" {
		kv := text
		// name= consumes the rest of the line (names may contain spaces).
		if i := strings.Index(text, " "); i >= 0 && !strings.HasPrefix(text, "name=") {
			kv, text = text[:i], strings.TrimSpace(text[i+1:])
		} else {
			text = ""
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		switch k {
		case "name":
			c.Name = v
		case "category":
			if n, err := strconv.Atoi(v); err == nil {
				c.Category = n
			}
		}
	}
}

// WriteBinary writes the community in the compact binary format.
func WriteBinary(w io.Writer, c *Community) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	name := []byte(c.Name)
	hdr := make([]byte, 0, 16)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(name)))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(int32(c.Category)))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(c.Users)))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(c.Dim()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	buf := make([]byte, 4)
	for _, u := range c.Users {
		for _, v := range u {
			binary.LittleEndian.PutUint32(buf, uint32(v))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a community written by WriteBinary.
func ReadBinary(r io.Reader) (*Community, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("vector: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("vector: bad magic %q", magic)
	}
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("vector: reading header: %w", err)
	}
	nameLen := binary.LittleEndian.Uint32(hdr[0:4])
	category := int32(binary.LittleEndian.Uint32(hdr[4:8]))
	n := binary.LittleEndian.Uint32(hdr[8:12])
	d := binary.LittleEndian.Uint32(hdr[12:16])
	if nameLen > 1<<20 || n > 1<<30 || d > 1<<16 {
		return nil, fmt.Errorf("vector: implausible header (nameLen=%d n=%d d=%d)", nameLen, n, d)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("vector: reading name: %w", err)
	}
	c := &Community{Name: string(name), Category: int(category)}
	c.Users = make([]Vector, n)
	buf := make([]byte, 4*d)
	for i := range c.Users {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("vector: reading user %d: %w", i, err)
		}
		u := make(Vector, d)
		for j := range u {
			u[j] = int32(binary.LittleEndian.Uint32(buf[4*j:]))
		}
		c.Users[i] = u
	}
	if err := c.Validate(int(d)); err != nil {
		return nil, err
	}
	return c, nil
}
