package vector

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The on-disk formats:
//
//   - CSV: one user per line, d comma-separated non-negative integers.
//     A leading "# name=<n> category=<c>" comment line is optional.
//   - Binary: a compact little-endian format with a magic header, used by
//     cmd/csjgen for large generated datasets.

const binaryMagic = "CSJC\x01"

// WriteCSV writes the community in CSV form.
func WriteCSV(w io.Writer, c *Community) error {
	bw := bufio.NewWriter(w)
	// name= consumes the rest of the line so that names may contain spaces.
	if _, err := fmt.Fprintf(bw, "# category=%d name=%s\n", c.Category, csvEscape(c.Name)); err != nil {
		return err
	}
	var sb strings.Builder
	for _, u := range c.Users {
		sb.Reset()
		for i, v := range u {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.FormatInt(int64(v), 10))
		}
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func csvEscape(s string) string {
	return strings.NewReplacer("\n", " ", "\r", " ").Replace(s)
}

// ReadCSV parses a community written by WriteCSV. Blank lines are
// ignored; the first "# name=... category=..." comment, if present, sets
// the community metadata. Rows may be arbitrarily wide: the reader has
// no per-line token limit (bufio.Scanner's cap turned large-d profiles
// into "token too long").
func ReadCSV(r io.Reader) (*Community, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	c := &Community{Category: -1}
	line := 0
	for {
		text, rerr := br.ReadString('\n')
		if text != "" {
			line++
		}
		if trimmed := strings.TrimSpace(text); trimmed != "" {
			if strings.HasPrefix(trimmed, "#") {
				parseCSVHeader(trimmed, c)
			} else {
				fields := strings.Split(trimmed, ",")
				u := make(Vector, len(fields))
				for i, f := range fields {
					v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 32)
					if err != nil {
						return nil, fmt.Errorf("vector: csv line %d field %d: %w", line, i+1, err)
					}
					u[i] = int32(v)
				}
				c.Users = append(c.Users, u)
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return nil, rerr
		}
	}
	if err := c.Validate(0); err != nil {
		return nil, err
	}
	return c, nil
}

func parseCSVHeader(text string, c *Community) {
	text = strings.TrimSpace(strings.TrimPrefix(text, "#"))
	for text != "" {
		kv := text
		// name= consumes the rest of the line (names may contain spaces).
		if i := strings.Index(text, " "); i >= 0 && !strings.HasPrefix(text, "name=") {
			kv, text = text[:i], strings.TrimSpace(text[i+1:])
		} else {
			text = ""
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		switch k {
		case "name":
			c.Name = v
		case "category":
			if n, err := strconv.Atoi(v); err == nil {
				c.Category = n
			}
		}
	}
}

// WriteBinary writes the community in the compact binary format.
func WriteBinary(w io.Writer, c *Community) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	name := []byte(c.Name)
	hdr := make([]byte, 0, 16)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(name)))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(int32(c.Category)))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(c.Users)))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(c.Dim()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	buf := make([]byte, 4)
	for _, u := range c.Users {
		for _, v := range u {
			binary.LittleEndian.PutUint32(buf, uint32(v))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// MaxBinaryPayloadBytes caps how many profile-payload bytes (n*d*4) a
// binary header may claim. The header is untrusted input — without a
// cap, a 36-byte crafted file claiming n=1<<30 users would drive a
// multi-gigabyte allocation before a single payload byte is read.
const MaxBinaryPayloadBytes = int64(1) << 31

// ReadBinary parses a community written by WriteBinary. When the total
// input size is known (a file, an HTTP body with Content-Length), prefer
// ReadBinarySized so implausible headers are rejected up front.
func ReadBinary(r io.Reader) (*Community, error) {
	return ReadBinarySized(r, -1)
}

// ReadBinarySized parses a community written by WriteBinary, treating
// the header as untrusted: the claimed payload size n*d*4 is checked
// against MaxBinaryPayloadBytes and, when sizeHint >= 0, against the
// number of bytes the source can actually supply. Rows are then
// allocated incrementally as they are read, so memory use tracks the
// bytes actually consumed rather than the header's claim. A negative
// sizeHint means the total input size is unknown.
func ReadBinarySized(r io.Reader, sizeHint int64) (*Community, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("vector: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("vector: bad magic %q", magic)
	}
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("vector: reading header: %w", err)
	}
	nameLen := binary.LittleEndian.Uint32(hdr[0:4])
	category := int32(binary.LittleEndian.Uint32(hdr[4:8]))
	n := binary.LittleEndian.Uint32(hdr[8:12])
	d := binary.LittleEndian.Uint32(hdr[12:16])
	if nameLen > 1<<20 || n > 1<<30 || d > 1<<16 {
		return nil, fmt.Errorf("vector: implausible header (nameLen=%d n=%d d=%d)", nameLen, n, d)
	}
	if n > 0 && d == 0 {
		// Zero-dim users are invalid (Validate rejects them), but the
		// claimed payload is 0 bytes, so without this check the row loop
		// below would spin n times — CPU and slice-header memory
		// proportional to an attacker-chosen claim — before failing.
		return nil, fmt.Errorf("vector: header claims %d users of zero dimensions", n)
	}
	payload := int64(n) * int64(d) * 4 // n <= 1<<30, d <= 1<<16: no overflow
	if payload > MaxBinaryPayloadBytes {
		return nil, fmt.Errorf("vector: header claims %d bytes of profiles (n=%d d=%d), over the %d-byte cap",
			payload, n, d, MaxBinaryPayloadBytes)
	}
	if need := int64(len(binaryMagic)) + 16 + int64(nameLen) + payload; sizeHint >= 0 && sizeHint < need {
		return nil, fmt.Errorf("vector: header claims %d bytes but the source holds only %d", need, sizeHint)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("vector: reading name: %w", err)
	}
	c := &Community{Name: string(name), Category: int(category)}
	c.Users = make([]Vector, 0, min(int(n), 1024))
	buf := make([]byte, 4*d)
	for i := 0; i < int(n); i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("vector: reading user %d: %w", i, err)
		}
		u := make(Vector, d)
		for j := range u {
			u[j] = int32(binary.LittleEndian.Uint32(buf[4*j:]))
		}
		c.Users = append(c.Users, u)
	}
	if err := c.Validate(int(d)); err != nil {
		return nil, err
	}
	return c, nil
}
