package vector

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func randomCommunity(rng *rand.Rand, name string, n, d int) *Community {
	users := make([]Vector, n)
	for i := range users {
		u := make(Vector, d)
		for j := range u {
			u[j] = int32(rng.Intn(1000))
		}
		users[i] = u
	}
	return &Community{Name: name, Category: rng.Intn(27), Users: users}
}

func communitiesEqual(a, b *Community) bool {
	if a.Name != b.Name || a.Category != b.Category || len(a.Users) != len(b.Users) {
		return false
	}
	for i := range a.Users {
		if len(a.Users[i]) != len(b.Users[i]) {
			return false
		}
		for j := range a.Users[i] {
			if a.Users[i][j] != b.Users[i][j] {
				return false
			}
		}
	}
	return true
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := randomCommunity(rng, "Quick Recipes", 50, 27)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, c); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !communitiesEqual(c, got) {
		t.Error("CSV round trip mismatch")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := randomCommunity(rng, "Sportshacker", 100, 27)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, c); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !communitiesEqual(c, got) {
		t.Error("binary round trip mismatch")
	}
}

func TestBinaryNegativeCategoryRoundTrip(t *testing.T) {
	c := &Community{Name: "n", Category: -1, Users: []Vector{{1, 2, 3}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, c); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if got.Category != -1 {
		t.Errorf("Category = %d, want -1", got.Category)
	}
}

func TestReadCSVHandlesWhitespaceAndBlankLines(t *testing.T) {
	in := "# category=3 name=X\n\n 1 , 2 ,3\n4,5,6\n\n"
	c, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if c.Name != "X" || c.Category != 3 || c.Size() != 2 || c.Dim() != 3 {
		t.Errorf("parsed %+v, want name X, category 3, 2 users, 3 dims", c)
	}
	if c.Users[0][0] != 1 || c.Users[1][2] != 6 {
		t.Errorf("unexpected values: %v", c.Users)
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1,two,3\n")); err == nil {
		t.Error("expected parse error on non-numeric field")
	}
	if _, err := ReadCSV(strings.NewReader("1,-2,3\n")); err == nil {
		t.Error("expected validation error on negative counter")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n1,2,3\n")); err == nil {
		t.Error("expected error on inconsistent dimensionality")
	}
}

func TestReadBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOTMAGICATALL"))); err == nil {
		t.Error("expected error on bad magic")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("expected error on empty input")
	}
}

func TestReadBinaryRejectsTruncated(t *testing.T) {
	c := &Community{Name: "t", Users: []Vector{{1, 2, 3}, {4, 5, 6}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, c); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) - 1, len(full) / 2, len(binaryMagic) + 3} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("expected error on truncation to %d bytes", cut)
		}
	}
}
