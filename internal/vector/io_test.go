package vector

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

func randomCommunity(rng *rand.Rand, name string, n, d int) *Community {
	users := make([]Vector, n)
	for i := range users {
		u := make(Vector, d)
		for j := range u {
			u[j] = int32(rng.Intn(1000))
		}
		users[i] = u
	}
	return &Community{Name: name, Category: rng.Intn(27), Users: users}
}

func communitiesEqual(a, b *Community) bool {
	if a.Name != b.Name || a.Category != b.Category || len(a.Users) != len(b.Users) {
		return false
	}
	for i := range a.Users {
		if len(a.Users[i]) != len(b.Users[i]) {
			return false
		}
		for j := range a.Users[i] {
			if a.Users[i][j] != b.Users[i][j] {
				return false
			}
		}
	}
	return true
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := randomCommunity(rng, "Quick Recipes", 50, 27)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, c); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !communitiesEqual(c, got) {
		t.Error("CSV round trip mismatch")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := randomCommunity(rng, "Sportshacker", 100, 27)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, c); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !communitiesEqual(c, got) {
		t.Error("binary round trip mismatch")
	}
}

func TestBinaryNegativeCategoryRoundTrip(t *testing.T) {
	c := &Community{Name: "n", Category: -1, Users: []Vector{{1, 2, 3}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, c); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if got.Category != -1 {
		t.Errorf("Category = %d, want -1", got.Category)
	}
}

func TestReadCSVHandlesWhitespaceAndBlankLines(t *testing.T) {
	in := "# category=3 name=X\n\n 1 , 2 ,3\n4,5,6\n\n"
	c, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if c.Name != "X" || c.Category != 3 || c.Size() != 2 || c.Dim() != 3 {
		t.Errorf("parsed %+v, want name X, category 3, 2 users, 3 dims", c)
	}
	if c.Users[0][0] != 1 || c.Users[1][2] != 6 {
		t.Errorf("unexpected values: %v", c.Users)
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1,two,3\n")); err == nil {
		t.Error("expected parse error on non-numeric field")
	}
	if _, err := ReadCSV(strings.NewReader("1,-2,3\n")); err == nil {
		t.Error("expected validation error on negative counter")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n1,2,3\n")); err == nil {
		t.Error("expected error on inconsistent dimensionality")
	}
}

func TestReadBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOTMAGICATALL"))); err == nil {
		t.Error("expected error on bad magic")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("expected error on empty input")
	}
}

func TestReadBinaryRejectsTruncated(t *testing.T) {
	c := &Community{Name: "t", Users: []Vector{{1, 2, 3}, {4, 5, 6}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, c); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) - 1, len(full) / 2, len(binaryMagic) + 3} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("expected error on truncation to %d bytes", cut)
		}
	}
}

// craftBinaryHeader builds magic + header claiming the given shape,
// followed by payload (which may be far less than the header claims).
func craftBinaryHeader(nameLen, category, n, d uint32, payload []byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	hdr := make([]byte, 0, 16)
	hdr = binary.LittleEndian.AppendUint32(hdr, nameLen)
	hdr = binary.LittleEndian.AppendUint32(hdr, category)
	hdr = binary.LittleEndian.AppendUint32(hdr, n)
	hdr = binary.LittleEndian.AppendUint32(hdr, d)
	buf.Write(hdr)
	buf.Write(payload)
	return buf.Bytes()
}

// TestReadBinaryMaliciousHeaderDoesNotPreallocate pins the ingest
// hardening: a tiny file whose header claims ~2^30 users must fail with
// an error — and without allocating memory proportional to the claim.
// Before the fix, make([]Vector, n) allocated gigabytes of slice
// headers from a 36-byte input.
func TestReadBinaryMaliciousHeaderDoesNotPreallocate(t *testing.T) {
	// n*d*4 stays under the payload cap, so only incremental allocation
	// protects us here; the read must die on the missing payload.
	in := craftBinaryHeader(0, 0, 1<<27, 1, nil)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	c, err := ReadBinary(bytes.NewReader(in))
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatalf("accepted a %d-byte file claiming 2^27 users: %+v", len(in), c)
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 16<<20 {
		t.Errorf("rejecting the malicious header allocated %d bytes; want memory proportional to input, not header claim", grew)
	}
}

func TestReadBinaryRejectsPayloadOverCap(t *testing.T) {
	// n and d individually plausible, but n*d*4 = 2^34 bytes.
	in := craftBinaryHeader(0, 0, 1<<26, 1<<6, nil)
	_, err := ReadBinary(bytes.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("payload over MaxBinaryPayloadBytes: err = %v, want cap error", err)
	}
}

func TestReadBinarySizedRejectsShortSource(t *testing.T) {
	c := &Community{Name: "sized", Users: []Vector{{1, 2}, {3, 4}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, c); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// The true size round-trips.
	if _, err := ReadBinarySized(bytes.NewReader(full), int64(len(full))); err != nil {
		t.Fatalf("ReadBinarySized with exact hint: %v", err)
	}
	// A hint smaller than the header's claim fails up front with the
	// claim-vs-source message, not a payload read error.
	_, err := ReadBinarySized(bytes.NewReader(full), int64(len(full))-1)
	if err == nil || !strings.Contains(err.Error(), "source holds only") {
		t.Errorf("short size hint: err = %v, want claim-vs-source error", err)
	}
}

// TestReadCSVWideRow pins the scanner fix: one profile row wider than
// bufio.Scanner's old 4MiB token cap must parse (ReadCSV now streams
// lines through a bufio.Reader with no per-line limit).
func TestReadCSVWideRow(t *testing.T) {
	const d = 1<<21 + 64 // ~2M dims; the row alone is >4MiB of text
	var sb strings.Builder
	sb.Grow(3 * d)
	for i := 0; i < d; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(i % 10))
	}
	row := sb.String()
	if len(row) <= 1<<22 {
		t.Fatalf("test row is only %d bytes; must exceed the old 4MiB cap", len(row))
	}
	c, err := ReadCSV(strings.NewReader(row + "\n" + row + "\n"))
	if err != nil {
		t.Fatalf("ReadCSV wide row: %v", err)
	}
	if c.Size() != 2 || c.Dim() != d {
		t.Fatalf("parsed %d users x %d dims, want 2 x %d", c.Size(), c.Dim(), d)
	}
	if c.Users[1][d-1] != int32((d-1)%10) {
		t.Errorf("last counter = %d, want %d", c.Users[1][d-1], (d-1)%10)
	}
}

// TestReadCSVFinalLineWithoutNewline guards the bufio.Reader rewrite:
// the last row must parse even when the file has no trailing newline.
func TestReadCSVFinalLineWithoutNewline(t *testing.T) {
	c, err := ReadCSV(strings.NewReader("1,2,3\n4,5,6"))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if c.Size() != 2 || c.Users[1][2] != 6 {
		t.Errorf("parsed %+v, want 2 users ending in 6", c.Users)
	}
}

// TestIngestRejectsNegativeCounters pins that both ingest paths refuse
// negative counters (the scan loops assume non-negative profiles). The
// binary case crafts 0xFFFFFFFF, which decodes to int32(-1).
func TestIngestRejectsNegativeCounters(t *testing.T) {
	payload := make([]byte, 12)
	binary.LittleEndian.PutUint32(payload[0:], 1)
	binary.LittleEndian.PutUint32(payload[4:], 0xFFFFFFFF)
	binary.LittleEndian.PutUint32(payload[8:], 3)
	in := craftBinaryHeader(0, 0, 1, 3, payload)
	if _, err := ReadBinary(bytes.NewReader(in)); !errors.Is(err, ErrNegativeCounter) {
		t.Errorf("binary negative counter: err = %v, want ErrNegativeCounter", err)
	}
	if _, err := ReadCSV(strings.NewReader("7,8\n1,-2\n")); !errors.Is(err, ErrNegativeCounter) {
		t.Errorf("csv negative counter: err = %v, want ErrNegativeCounter", err)
	}
}
