// Package vector defines user-profile vectors and communities, the raw
// data model of the CSJ problem.
//
// A user profile is a d-dimensional vector of non-negative integer
// counters; dimension i holds the aggregate number of user preferences
// (likes, views, purchases, ...) for category i. A community is a named
// bag of user profiles, all with the same dimensionality.
package vector

import (
	"errors"
	"fmt"
	"math"
)

// Vector is a d-dimensional user profile. Each element is an aggregate
// preference counter for one category and must be non-negative.
type Vector []int32

// ErrDimensionMismatch is returned when two vectors or communities with
// different dimensionalities are combined.
var ErrDimensionMismatch = errors.New("vector: dimension mismatch")

// ErrNegativeCounter is returned by Validate when a counter is negative.
var ErrNegativeCounter = errors.New("vector: negative counter")

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Validate checks that every counter is non-negative.
func (v Vector) Validate() error {
	for i, c := range v {
		if c < 0 {
			return fmt.Errorf("%w: dimension %d holds %d", ErrNegativeCounter, i, c)
		}
	}
	return nil
}

// Sum returns the total number of preferences across all dimensions.
// The result is an int64 because d*MaxInt32 overflows int32.
func (v Vector) Sum() int64 {
	var s int64
	for _, c := range v {
		s += int64(c)
	}
	return s
}

// Max returns the largest counter in v, or 0 for an empty vector.
func (v Vector) Max() int32 {
	var m int32
	for _, c := range v {
		if c > m {
			m = c
		}
	}
	return m
}

// MatchEpsilon reports whether a and b match under the CSJ per-dimension
// condition: |a_i - b_i| <= eps for every dimension i. It panics if the
// vectors have different lengths; callers are expected to have validated
// community dimensionality up front.
//
// The difference is taken in int64: the naive int32 subtraction
// overflows for extreme operands (MaxInt32 - MinInt32 wraps to -1 and
// reads as a match), so no int32 arithmetic touches the operands. The
// SoA scan path reaches the same answer through saturated lo/hi windows
// that never subtract at compare time.
func MatchEpsilon(a, b Vector, eps int32) bool {
	if len(a) != len(b) {
		panic("vector: MatchEpsilon on vectors of different dimensionality")
	}
	e := int64(eps)
	for i := range a {
		d := int64(a[i]) - int64(b[i])
		if d > e || d < -e {
			return false
		}
	}
	return true
}

// ChebyshevDistance returns max_i |a_i - b_i|, the smallest eps for which
// a and b match, saturated to MaxInt32 (an epsilon is an int32, and any
// distance at or above MaxInt32 is equally unmatchable). Computed in
// int64 for the same overflow reason as MatchEpsilon. It panics on
// dimension mismatch.
func ChebyshevDistance(a, b Vector) int32 {
	if len(a) != len(b) {
		panic("vector: ChebyshevDistance on vectors of different dimensionality")
	}
	var m int64
	for i := range a {
		d := int64(a[i]) - int64(b[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	if m > math.MaxInt32 {
		return math.MaxInt32
	}
	return int32(m)
}

// L1Distance returns sum_i |a_i - b_i|. SuperEGO's epsilon adaptation in
// the paper reasons about this aggregate distance.
func L1Distance(a, b Vector) int64 {
	if len(a) != len(b) {
		panic("vector: L1Distance on vectors of different dimensionality")
	}
	var s int64
	for i := range a {
		d := int64(a[i]) - int64(b[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}
