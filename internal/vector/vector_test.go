package vector

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatchEpsilonBasic(t *testing.T) {
	tests := []struct {
		name string
		a, b Vector
		eps  int32
		want bool
	}{
		{"identical", Vector{1, 2, 3}, Vector{1, 2, 3}, 0, true},
		{"within one", Vector{1, 2, 3}, Vector{2, 1, 4}, 1, true},
		{"one dim too far", Vector{1, 2, 3}, Vector{2, 1, 5}, 1, false},
		{"exactly eps", Vector{10, 10}, Vector{13, 7}, 3, true},
		{"eps zero mismatch", Vector{5}, Vector{6}, 0, false},
		{"empty vectors", Vector{}, Vector{}, 1, true},
		{"large counters", Vector{500000, 0}, Vector{485000, 15000}, 15000, true},
		{"large counters fail", Vector{500000, 0}, Vector{484999, 15000}, 15000, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := MatchEpsilon(tc.a, tc.b, tc.eps); got != tc.want {
				t.Errorf("MatchEpsilon(%v, %v, %d) = %v, want %v", tc.a, tc.b, tc.eps, got, tc.want)
			}
			// Symmetry.
			if got := MatchEpsilon(tc.b, tc.a, tc.eps); got != tc.want {
				t.Errorf("MatchEpsilon(%v, %v, %d) = %v, want %v (symmetry)", tc.b, tc.a, tc.eps, got, tc.want)
			}
		})
	}
}

func TestMatchEpsilonPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	MatchEpsilon(Vector{1, 2}, Vector{1}, 1)
}

// The paper's example from Section 3: eps=1, d=3 (Music, Sport, Education).
func TestMatchEpsilonPaperSection3Example(t *testing.T) {
	b1 := Vector{3, 4, 2}
	b2 := Vector{2, 2, 3}
	a1 := Vector{2, 3, 5}
	a2 := Vector{2, 3, 1}
	a3 := Vector{3, 3, 3}
	const eps = 1
	// b1 can be matched with a2 and a3 (but not a1).
	if MatchEpsilon(b1, a1, eps) {
		t.Error("b1 should not match a1 (Education differs by 3)")
	}
	if !MatchEpsilon(b1, a2, eps) {
		t.Error("b1 should match a2")
	}
	if !MatchEpsilon(b1, a3, eps) {
		t.Error("b1 should match a3")
	}
	// b2 can be matched only with a3.
	if MatchEpsilon(b2, a1, eps) || MatchEpsilon(b2, a2, eps) {
		t.Error("b2 should match neither a1 nor a2")
	}
	if !MatchEpsilon(b2, a3, eps) {
		t.Error("b2 should match a3")
	}
}

// TestMatchEpsilonNoInt32Overflow is the regression for the epsilon
// predicate's int32 subtraction: MaxInt32 - MinInt32 wraps to -1 in
// int32, so the old compare declared opposite extremes (2^32-1 apart)
// within any eps >= 1. The fixed compare works in int64 over the full
// int32 domain.
func TestMatchEpsilonNoInt32Overflow(t *testing.T) {
	const maxI32, minI32 = int32(1<<31 - 1), int32(-1 << 31)
	tests := []struct {
		name string
		a, b Vector
		eps  int32
		want bool
	}{
		{"opposite extremes small eps", Vector{maxI32}, Vector{minI32}, 5, false},
		{"opposite extremes max eps", Vector{maxI32}, Vector{minI32}, maxI32, false},
		{"extreme vs zero", Vector{maxI32}, Vector{0}, maxI32, true},
		{"extreme vs zero short", Vector{maxI32}, Vector{0}, maxI32 - 1, false},
		{"min vs zero", Vector{minI32}, Vector{0}, maxI32, false}, // distance is 2^31 > MaxInt32
		{"min vs min", Vector{minI32}, Vector{minI32}, 0, true},
		{"adjacent extremes", Vector{maxI32}, Vector{maxI32 - 1}, 1, true},
		{"mixed dims", Vector{maxI32, 0, minI32}, Vector{minI32, 0, maxI32}, 100, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := MatchEpsilon(tc.a, tc.b, tc.eps); got != tc.want {
				t.Errorf("MatchEpsilon(%v, %v, %d) = %v, want %v", tc.a, tc.b, tc.eps, got, tc.want)
			}
			if got := MatchEpsilon(tc.b, tc.a, tc.eps); got != tc.want {
				t.Errorf("MatchEpsilon(%v, %v, %d) = %v, want %v (symmetry)", tc.b, tc.a, tc.eps, got, tc.want)
			}
		})
	}
}

// TestChebyshevDistanceSaturates pins the companion fix: the distance
// accumulates in int64 and saturates the int32 return at MaxInt32
// instead of wrapping negative on extreme spans.
func TestChebyshevDistanceSaturates(t *testing.T) {
	const maxI32, minI32 = int32(1<<31 - 1), int32(-1 << 31)
	if got := ChebyshevDistance(Vector{maxI32}, Vector{minI32}); got != maxI32 {
		t.Errorf("ChebyshevDistance(extremes) = %d, want saturated %d", got, maxI32)
	}
	if got := ChebyshevDistance(Vector{minI32}, Vector{0}); got != maxI32 {
		t.Errorf("ChebyshevDistance(MinInt32, 0) = %d, want saturated %d", got, maxI32)
	}
	// Agreement with MatchEpsilon on extreme inputs: saturated distance
	// still classifies correctly against every representable eps.
	if MatchEpsilon(Vector{maxI32}, Vector{minI32}, maxI32) {
		t.Error("opposite extremes matched under eps=MaxInt32")
	}
}

func TestChebyshevDistance(t *testing.T) {
	a := Vector{1, 5, 9}
	b := Vector{4, 5, 2}
	if got := ChebyshevDistance(a, b); got != 7 {
		t.Fatalf("ChebyshevDistance = %d, want 7", got)
	}
	if got := ChebyshevDistance(a, a); got != 0 {
		t.Fatalf("ChebyshevDistance(a,a) = %d, want 0", got)
	}
}

// Property: MatchEpsilon(a, b, eps) iff ChebyshevDistance(a, b) <= eps.
func TestMatchEpsilonEquivalentToChebyshev(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(32)
		a, b := make(Vector, d), make(Vector, d)
		for i := 0; i < d; i++ {
			a[i] = int32(rng.Intn(100))
			b[i] = int32(rng.Intn(100))
		}
		eps := int32(rng.Intn(100))
		return MatchEpsilon(a, b, eps) == (ChebyshevDistance(a, b) <= eps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestL1Distance(t *testing.T) {
	a := Vector{1, 5, 9}
	b := Vector{4, 5, 2}
	if got := L1Distance(a, b); got != 10 {
		t.Fatalf("L1Distance = %d, want 10", got)
	}
}

// Property: per-dimension match implies L1 <= d*eps (the SuperEGO epsilon
// adaptation used by the paper: eps_superego = d*eps).
func TestPerDimMatchImpliesL1Bound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(27)
		eps := int32(1 + rng.Intn(5))
		a, b := make(Vector, d), make(Vector, d)
		for i := 0; i < d; i++ {
			a[i] = int32(rng.Intn(20))
			// Force a match by perturbing within eps.
			delta := int32(rng.Intn(int(2*eps+1))) - eps
			v := a[i] + delta
			if v < 0 {
				v = 0
			}
			b[i] = v
		}
		if !MatchEpsilon(a, b, eps) {
			return false
		}
		return L1Distance(a, b) <= int64(d)*int64(eps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVectorSumMaxClone(t *testing.T) {
	v := Vector{3, 1, 4, 1, 5}
	if got := v.Sum(); got != 14 {
		t.Errorf("Sum = %d, want 14", got)
	}
	if got := v.Max(); got != 5 {
		t.Errorf("Max = %d, want 5", got)
	}
	c := v.Clone()
	c[0] = 99
	if v[0] != 3 {
		t.Error("Clone is not a deep copy")
	}
	var empty Vector
	if empty.Sum() != 0 || empty.Max() != 0 {
		t.Error("empty vector Sum/Max should be 0")
	}
}

func TestVectorSumNoOverflow(t *testing.T) {
	const big = int32(1<<31 - 1)
	v := Vector{big, big, big}
	want := 3 * int64(big)
	if got := v.Sum(); got != want {
		t.Errorf("Sum = %d, want %d", got, want)
	}
}

func TestValidate(t *testing.T) {
	if err := (Vector{0, 1, 2}).Validate(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	if err := (Vector{0, -1, 2}).Validate(); err == nil {
		t.Error("expected error on negative counter")
	}
}
