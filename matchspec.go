package csj

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"

	"github.com/opencsj/csj/internal/encoding"
	"github.com/opencsj/csj/internal/vector"
)

// ErrEpsilonVecUnsupported reports a per-dimension epsilon vector
// passed to a method family that only understands the scalar. The
// MinMax methods (and everything built on their prepared views: the
// batch engines, the store, the index) accept vectors; Baseline and
// SuperEGO take scalars only. An all-equal vector canonicalizes to its
// scalar before this check, so it works with every method.
var ErrEpsilonVecUnsupported = errors.New("csj: per-dimension epsilon requires a MinMax method")

// ErrBadScorer reports an invalid composite-scorer specification:
// a negative weight, or all weights zero.
var ErrBadScorer = errors.New("csj: bad scorer")

// ScorerSpec is the optional composite scorer of a match spec. When
// attached (Options.Scorer), the reported Similarity becomes the
// weighted blend
//
//	w_csj·s_csj + w_cat·overlap + w_cos·cosine
//
// where s_csj is the paper's score p·|pairs|/|B|, overlap is 1 when
// both communities declare the same home category (Community.Category,
// both >= 0) and 0 otherwise, and cosine is the cosine similarity of
// the two communities' normalized centroid profiles (internal/ego's
// max-counter normalization; 0 when either centroid is the zero
// vector). Weights must be non-negative and not all zero; they are
// normalized to sum 1, so ScorerSpec{CSJWeight: 2, CosineWeight: 2}
// means an equal 50/50 blend. All three components live in [0, 1], so
// the blend does too, and the batch engines' ordering, top-k merging,
// and cluster scatter-gather operate on it unchanged. Result.Blend
// reports the unweighted components alongside the blended score.
//
// A scorer whose normalized weights are (1, 0, 0) is the plain CSJ
// score and is canonicalized away (equivalent to a nil Scorer).
type ScorerSpec struct {
	// CSJWeight scales the CSJ profile-join score p·|pairs|/|B|.
	CSJWeight float64
	// CategoryWeight scales the home-category overlap signal.
	CategoryWeight float64
	// CosineWeight scales the cosine of the normalized centroids.
	CosineWeight float64
}

// Validate rejects negative or all-zero weights. A nil scorer is
// valid (the plain CSJ score).
func (sc *ScorerSpec) Validate() error { return sc.validate() }

// validate rejects negative or all-zero weights.
func (sc *ScorerSpec) validate() error {
	if sc == nil {
		return nil
	}
	if sc.CSJWeight < 0 || sc.CategoryWeight < 0 || sc.CosineWeight < 0 {
		return fmt.Errorf("%w: weights must be non-negative, got (%g, %g, %g)",
			ErrBadScorer, sc.CSJWeight, sc.CategoryWeight, sc.CosineWeight)
	}
	if sc.CSJWeight == 0 && sc.CategoryWeight == 0 && sc.CosineWeight == 0 {
		return fmt.Errorf("%w: all weights are zero", ErrBadScorer)
	}
	return nil
}

// normalized returns the weights scaled to sum 1. Callers validate
// first; on an all-zero spec it degrades to the pure CSJ score.
func (sc *ScorerSpec) normalized() (wc, wcat, wcos float64) {
	sum := sc.CSJWeight + sc.CategoryWeight + sc.CosineWeight
	if sum <= 0 {
		return 1, 0, 0
	}
	return sc.CSJWeight / sum, sc.CategoryWeight / sum, sc.CosineWeight / sum
}

// isNoop reports whether the scorer is absent or normalizes to the
// pure CSJ score.
func (sc *ScorerSpec) isNoop() bool {
	if sc == nil {
		return true
	}
	wc, wcat, wcos := sc.normalized()
	return wc == 1 && wcat == 0 && wcos == 0
}

// ScoreBlend reports the unweighted components behind a composite
// similarity (Result.Blend).
type ScoreBlend struct {
	// CSJ is the paper's score p·|pairs|/|B| before blending.
	CSJ float64
	// Category is the home-category overlap: 1 or 0.
	Category float64
	// Cosine is the cosine similarity of the normalized centroids.
	Cosine float64
}

// MatchSpec is the canonical description of what makes two profiles
// (and two communities) similar: the matching tolerance — a scalar
// epsilon or a per-dimension vector — the MinMax part count, and the
// optional composite scorer. It is the unit the prepared-view cache
// keys on (via Digest) and the parameter set the server and
// coordinator forward losslessly.
type MatchSpec struct {
	// Epsilon is the scalar per-dimension tolerance; ignored when
	// EpsilonVec is set.
	Epsilon int32
	// EpsilonVec is the optional per-dimension tolerance vector.
	EpsilonVec []int32
	// Parts is the MinMax encoding part count; 0 means the default.
	Parts int
	// Scorer is the optional composite scorer.
	Scorer *ScorerSpec
}

// Spec snapshots the match-relevant fields of the options.
func (o *Options) Spec() MatchSpec {
	if o == nil {
		return MatchSpec{}
	}
	return MatchSpec{
		Epsilon:    o.Epsilon,
		EpsilonVec: o.EpsilonVec,
		Parts:      o.Parts,
		Scorer:     o.Scorer,
	}
}

// options converts the spec back into engine options (the non-spec
// fields at their defaults).
func (s MatchSpec) options() *Options {
	return &Options{
		Epsilon:    s.Epsilon,
		EpsilonVec: s.EpsilonVec,
		Parts:      s.Parts,
		Scorer:     s.Scorer,
	}
}

// DefaultParts is the MinMax part count selected by Parts == 0 — the
// paper's default encoding granularity (clamped to the profile
// dimensionality when larger).
const DefaultParts = encoding.DefaultParts

// canonicalParts resolves the effective part count for dimensionality
// d, mirroring the engine's resolution: 0 selects the paper's default,
// and the count is clamped to d.
func canonicalParts(parts, d int) int {
	if parts <= 0 {
		parts = encoding.DefaultParts
	}
	if d > 0 && parts > d {
		parts = d
	}
	return parts
}

// Canonical returns the spec in canonical form for dimensionality d:
// an all-equal epsilon vector collapses to its scalar, the part count
// resolves defaults and clamping, and a no-op scorer drops to nil.
// Distinct spellings of the same predicate canonicalize — and
// therefore digest — identically.
func (s MatchSpec) Canonical(d int) MatchSpec {
	out := s
	if len(out.EpsilonVec) > 0 {
		eps := vector.NewEps(out.Epsilon, out.EpsilonVec)
		if sc, ok := eps.Uniform(); ok {
			out.Epsilon, out.EpsilonVec = sc, nil
		} else {
			out.Epsilon = 0
		}
	}
	out.Parts = canonicalParts(out.Parts, d)
	if out.Scorer.isNoop() {
		out.Scorer = nil
	}
	return out
}

// ViewSpec strips the scorer: prepared views depend only on the
// tolerance and part count, so specs differing only in scorer share
// cached views (and view digests).
func (s MatchSpec) ViewSpec() MatchSpec {
	s.Scorer = nil
	return s
}

// Validate checks the spec against profile dimensionality d: epsilon
// entries must be non-negative, a vector must have exactly d entries,
// and scorer weights must be non-negative and not all zero.
func (s MatchSpec) Validate(d int) error {
	if s.Epsilon < 0 {
		return fmt.Errorf("%w: epsilon is %d", vector.ErrNegativeEpsilon, s.Epsilon)
	}
	if err := vector.NewEps(s.Epsilon, s.EpsilonVec).Validate(d); err != nil {
		return err
	}
	return s.Scorer.validate()
}

// SpecDigest is a collision-resistant fingerprint of a canonical
// MatchSpec: SHA-256 over an injective (length-prefixed, fixed-width)
// encoding. Equal digests mean equal canonical specs for the same
// dimensionality, up to hash collisions; naive string encodings (where
// eps [1, 23] and [12, 3] could both print "123") cannot alias here.
// It is a comparable value type, usable directly as a map key.
type SpecDigest [32]byte

// String returns the digest in hex.
func (d SpecDigest) String() string { return hex.EncodeToString(d[:]) }

// specDigestStack is the stack-buffer size of Digest's encoder: specs
// whose encoding fits (epsilon vectors up to ~100 dimensions) digest
// without allocating, which is what keeps the store's warm spec-keyed
// cache-hit path at 0 allocs/op.
const specDigestStack = 512

// Digest fingerprints the canonical form of the spec for
// dimensionality d. The encoding is injective: a fixed header, the
// dimensionality and part count, a tagged scalar-or-vector tolerance
// with an explicit length, and the normalized scorer weights behind a
// presence byte — every field either fixed-width or length-prefixed,
// so distinct canonical specs never share an encoding.
func (s MatchSpec) Digest(d int) SpecDigest {
	c := s.Canonical(d)
	var arr [specDigestStack]byte
	buf := append(arr[:0], "csjspec\x01"...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Parts))
	if c.EpsilonVec == nil {
		buf = append(buf, 0)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Epsilon))
	} else {
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.EpsilonVec)))
		for _, e := range c.EpsilonVec {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(e))
		}
	}
	if c.Scorer == nil {
		buf = append(buf, 0)
	} else {
		wc, wcat, wcos := c.Scorer.normalized()
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(wc))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(wcat))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(wcos))
	}
	return sha256.Sum256(buf)
}
