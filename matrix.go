package csj

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"

	"github.com/opencsj/csj/internal/core"
	"github.com/opencsj/csj/internal/ego"
)

// PreparedCommunity is a community with its MinMax encodings cached for
// repeated joins (see Precompute). The underlying community must not be
// mutated while the prepared form is in use.
type PreparedCommunity struct {
	p    *core.Prepared
	name string

	// centroidOnce/centroidVal lazily cache the normalized centroid the
	// composite scorer's cosine signal reads. Computed on the first
	// scored join only — unscored workloads never pay the O(n·d) pass.
	centroidOnce sync.Once
	centroidVal  []float64
}

// Name returns the community's name.
func (pc *PreparedCommunity) Name() string { return pc.name }

// Size returns the community's size.
func (pc *PreparedCommunity) Size() int { return pc.p.Size() }

// Community returns the underlying community (shared, not copied).
func (pc *PreparedCommunity) Community() *Community {
	return fromInternal(pc.p.Community())
}

// centroid returns the cached normalized centroid (see ScorerSpec).
func (pc *PreparedCommunity) centroid() []float64 {
	pc.centroidOnce.Do(func() {
		pc.centroidVal = ego.NormalizedCentroid(pc.p.Community())
	})
	return pc.centroidVal
}

// Precompute encodes a community once for repeated MinMax joins under
// the given options (Epsilon and Parts are used). The paper's broadcast
// scenario joins "a variety of community pairs"; precomputing turns
// N*(N-1)/2 pairwise joins from O(N^2) encodings into O(N).
func Precompute(c *Community, opts *Options) (*PreparedCommunity, error) {
	o := opts.orDefault()
	ic := c.internal()
	if err := ic.Validate(0); err != nil {
		return nil, err
	}
	p, err := core.Prepare(ic, core.Options{Eps: o.Epsilon, EpsVec: o.EpsilonVec, Parts: o.Parts})
	if err != nil {
		return nil, err
	}
	return &PreparedCommunity{p: p, name: c.Name}, nil
}

// SavePreparedCommunity writes a prepared community (vectors plus both
// cached encodings) to a file, so later processes can join it without
// re-encoding.
func SavePreparedCommunity(path string, pc *PreparedCommunity) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := core.WritePrepared(f, pc.p)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("csj: saving prepared community %s: %w", path, werr)
	}
	return nil
}

// LoadPreparedCommunity reads a file written by SavePreparedCommunity.
func LoadPreparedCommunity(path string) (*PreparedCommunity, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := core.ReadPrepared(f)
	if err != nil {
		return nil, fmt.Errorf("csj: loading prepared community %s: %w", path, err)
	}
	return &PreparedCommunity{p: p, name: p.Community().Name}, nil
}

// SimilarityPrepared joins two precomputed communities with a MinMax
// method (ApMinMax or ExMinMax; the other methods do not use the cached
// encodings). b must be the smaller community unless
// opts.AllowSizeImbalance is set.
func SimilarityPrepared(b, a *PreparedCommunity, method Method, opts *Options) (*Result, error) {
	return SimilarityPreparedCtx(context.Background(), b, a, method, opts)
}

// SimilarityPreparedCtx is SimilarityPrepared with cooperative
// cancellation (see SimilarityCtx for the semantics).
func SimilarityPreparedCtx(ctx context.Context, b, a *PreparedCommunity, method Method, opts *Options) (*Result, error) {
	o := opts.orDefault()
	return similarityPrepared(ctx, b, a, method, &o, nil)
}

// similarityPrepared is the scratch-aware prepared join behind
// SimilarityPrepared and the batch engines. o must already be
// defaulted; s may be nil for a one-shot run.
func similarityPrepared(ctx context.Context, b, a *PreparedCommunity, method Method, o *Options, s *core.Scratch) (*Result, error) {
	out := &Result{}
	var cres core.Result
	if err := similarityPreparedInto(ctx, b, a, method, o, s, &cres, out); err != nil {
		return nil, err
	}
	return out, nil
}

// MatrixEntry is one cell of a similarity matrix: communities I and J
// (indexes into the input slice) and their CSJ result, or the reason
// the pair was not scored.
type MatrixEntry struct {
	I, J int
	// Result is the join result with the smaller community as B; nil
	// when Skipped.
	Result *Result
	// Skipped reports a violated size precondition.
	Skipped bool
}

// SimilarityMatrix scores every unordered pair of the given communities
// with a MinMax method, encoding each community exactly once. Pairs
// violating ceil(|A|/2) <= |B| are skipped unless
// opts.AllowSizeImbalance is set. Entries are returned in (I, J) order
// with I < J.
//
// Preparation and the cells fan out across a bounded worker pool of
// opts.Workers goroutines (0 selects GOMAXPROCS; 1 runs serially). Each
// cell is an independent serial join, so the entries are identical to a
// Workers=1 run for any worker count; the first join error cancels the
// remaining cells.
func SimilarityMatrix(comms []*Community, method Method, opts *Options) ([]MatrixEntry, error) {
	return SimilarityMatrixCtx(context.Background(), comms, method, opts)
}

// SimilarityMatrixCtx is SimilarityMatrix with cooperative
// cancellation: a canceled ctx stops the pool from dispatching further
// cells, interrupts in-flight scans at their next checkpoint, and
// returns ctx's error once the workers have unwound. No partial matrix
// is returned.
func SimilarityMatrixCtx(ctx context.Context, comms []*Community, method Method, opts *Options) ([]MatrixEntry, error) {
	if len(comms) < 2 {
		return nil, errors.New("csj: SimilarityMatrix needs at least two communities")
	}
	o := opts.orDefault()
	workers := batchWorkers(&o)

	prepared := make([]*PreparedCommunity, len(comms))
	if err := runPoolStats(ctx, workers, len(comms), "matrix/prepare", o.OnPoolStats, func(_, i int) error {
		p, err := Precompute(comms[i], opts)
		if err != nil {
			return fmt.Errorf("csj: preparing community %d (%s): %w", i, comms[i].Name, err)
		}
		prepared[i] = p
		return nil
	}); err != nil {
		return nil, err
	}
	return matrixCells(ctx, prepared, method, &o, workers)
}

// SimilarityMatrixPrepared scores every unordered pair of
// already-prepared communities, skipping the per-call encoding phase
// entirely — the workload the community store's view cache serves. All
// views must agree on epsilon and parts (Precompute with the same
// options, or views from one store snapshot); a mismatch surfaces as a
// join error.
func SimilarityMatrixPrepared(prepared []*PreparedCommunity, method Method, opts *Options) ([]MatrixEntry, error) {
	return SimilarityMatrixPreparedCtx(context.Background(), prepared, method, opts)
}

// SimilarityMatrixPreparedCtx is SimilarityMatrixPrepared with
// cooperative cancellation (see SimilarityMatrixCtx for the semantics).
func SimilarityMatrixPreparedCtx(ctx context.Context, prepared []*PreparedCommunity, method Method, opts *Options) ([]MatrixEntry, error) {
	if len(prepared) < 2 {
		return nil, errors.New("csj: SimilarityMatrix needs at least two communities")
	}
	for i, p := range prepared {
		if p == nil {
			return nil, fmt.Errorf("csj: prepared community %d is nil", i)
		}
	}
	o := opts.orDefault()
	workers := batchWorkers(&o)
	return matrixCells(ctx, prepared, method, &o, workers)
}

// matrixCells is the cell engine shared by the one-shot and prepared
// matrix entry points: every unordered pair, fanned out across the
// worker pool with per-worker scratch, smaller community as B.
func matrixCells(ctx context.Context, prepared []*PreparedCommunity, method Method, o *Options, workers int) ([]MatrixEntry, error) {
	n := len(prepared)
	cells := make([][2]int, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			cells = append(cells, [2]int{i, j})
		}
	}
	out := make([]MatrixEntry, len(cells))
	scratches := newScratchPool(workers)
	err := runPoolStats(ctx, workers, len(cells), "matrix/cells", o.OnPoolStats, func(w, idx int) error {
		i, j := cells[idx][0], cells[idx][1]
		b, a := prepared[i], prepared[j]
		entry := MatrixEntry{I: i, J: j}
		if b.Size() > a.Size() {
			b, a = a, b
		}
		res, err := similarityPrepared(ctx, b, a, method, o, scratches.get(w))
		switch {
		case err == nil:
			entry.Result = res
		case errors.Is(err, ErrSizeConstraint):
			entry.Skipped = true
		default:
			return fmt.Errorf("csj: joining %s with %s: %w", b.Name(), a.Name(), err)
		}
		out[idx] = entry
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
