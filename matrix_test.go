package csj_test

import (
	"errors"
	"math/rand"
	"testing"

	csj "github.com/opencsj/csj"
)

func TestSimilarityPreparedEqualsUnprepared(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		na := 40 + rng.Intn(40)
		nb := (na+1)/2 + rng.Intn(na-(na+1)/2+1)
		b := randComm(rng, "B", nb, 5, 8)
		a := randComm(rng, "A", na, 5, 8)
		opts := &csj.Options{Epsilon: 1}

		pb, err := csj.Precompute(b, opts)
		if err != nil {
			t.Fatal(err)
		}
		pa, err := csj.Precompute(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []csj.Method{csj.ApMinMax, csj.ExMinMax} {
			want, err := csj.Similarity(b, a, m, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := csj.SimilarityPrepared(pb, pa, m, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got.Similarity != want.Similarity || len(got.Pairs) != len(want.Pairs) {
				t.Fatalf("%v: prepared %.4f/%d pairs, unprepared %.4f/%d pairs",
					m, got.Similarity, len(got.Pairs), want.Similarity, len(want.Pairs))
			}
			for i := range got.Pairs {
				if got.Pairs[i] != want.Pairs[i] {
					t.Fatalf("%v: pair %d differs: %v vs %v", m, i, got.Pairs[i], want.Pairs[i])
				}
			}
		}
	}
}

func TestSimilarityPreparedRejectsNonMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	b := randComm(rng, "B", 20, 3, 5)
	pb, err := csj.Precompute(b, &csj.Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := csj.SimilarityPrepared(pb, pb, csj.ExSuperEGO, &csj.Options{Epsilon: 1}); !errors.Is(err, csj.ErrUnknownMethod) {
		t.Errorf("expected ErrUnknownMethod, got %v", err)
	}
}

func TestSimilarityPreparedSizeCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	small := randComm(rng, "small", 4, 3, 5)
	big := randComm(rng, "big", 20, 3, 5)
	opts := &csj.Options{Epsilon: 1}
	ps, _ := csj.Precompute(small, opts)
	pbg, _ := csj.Precompute(big, opts)
	if _, err := csj.SimilarityPrepared(ps, pbg, csj.ExMinMax, opts); !errors.Is(err, csj.ErrSizeConstraint) {
		t.Errorf("expected ErrSizeConstraint, got %v", err)
	}
	force := &csj.Options{Epsilon: 1, AllowSizeImbalance: true}
	if _, err := csj.SimilarityPrepared(ps, pbg, csj.ExMinMax, force); err != nil {
		t.Errorf("AllowSizeImbalance should bypass: %v", err)
	}
}

func TestPrecomputeValidation(t *testing.T) {
	if _, err := csj.Precompute(&csj.Community{Name: "e"}, nil); err == nil {
		t.Error("expected error for empty community")
	}
	if _, err := csj.Precompute(
		&csj.Community{Name: "x", Users: []csj.Vector{{1}}},
		&csj.Options{Epsilon: -1},
	); err == nil {
		t.Error("expected error for negative epsilon")
	}
}

func TestSimilarityMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	comms := []*csj.Community{
		randComm(rng, "c0", 50, 4, 6),
		randComm(rng, "c1", 60, 4, 6),
		randComm(rng, "c2", 55, 4, 6),
		randComm(rng, "tiny", 10, 4, 6), // will be skipped against the others
	}
	entries, err := csj.SimilarityMatrix(comms, csj.ExMinMax, &csj.Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 { // C(4,2)
		t.Fatalf("got %d entries, want 6", len(entries))
	}
	scored, skipped := 0, 0
	for _, e := range entries {
		if e.I >= e.J {
			t.Fatalf("entry order wrong: (%d, %d)", e.I, e.J)
		}
		if e.Skipped {
			skipped++
			if e.I != 3 && e.J != 3 {
				t.Errorf("unexpected skip for pair (%d, %d)", e.I, e.J)
			}
			continue
		}
		scored++
		// Cross-check one entry against the direct API.
		b, a := csj.Orient(comms[e.I], comms[e.J])
		want, err := csj.Similarity(b, a, csj.ExMinMax, &csj.Options{Epsilon: 1})
		if err != nil {
			t.Fatal(err)
		}
		if e.Result.Similarity != want.Similarity {
			t.Errorf("pair (%d,%d): matrix %.4f, direct %.4f",
				e.I, e.J, e.Result.Similarity, want.Similarity)
		}
	}
	if scored != 3 || skipped != 3 {
		t.Errorf("scored=%d skipped=%d, want 3 and 3", scored, skipped)
	}
	if _, err := csj.SimilarityMatrix(comms[:1], csj.ExMinMax, nil); err == nil {
		t.Error("expected error for a single community")
	}
}

func TestSimilarityMatrixSelfPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	c := randComm(rng, "c", 30, 3, 5)
	clone := &csj.Community{Name: "clone", Users: c.Users}
	entries, err := csj.SimilarityMatrix([]*csj.Community{c, clone}, csj.ExMinMax,
		&csj.Options{Epsilon: 0, Matcher: csj.MatcherHopcroftKarp})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Result == nil {
		t.Fatal("expected one scored entry")
	}
	if entries[0].Result.Similarity != 1.0 {
		t.Errorf("identical communities should be 100%% similar, got %.4f",
			entries[0].Result.Similarity)
	}
}
