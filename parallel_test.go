package csj_test

import (
	"math/rand"
	"testing"

	csj "github.com/opencsj/csj"
)

// Options.Workers must not change exact results (with the optimal
// matcher) for any exact method.
func TestWorkersOptionPreservesExactResults(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		na := 60 + rng.Intn(60)
		nb := (na+1)/2 + rng.Intn(na-(na+1)/2+1)
		b := randComm(rng, "B", nb, 6, 10)
		a := randComm(rng, "A", na, 6, 10)
		for _, m := range csj.ExactMethods {
			serial, err := csj.Similarity(b, a, m, &csj.Options{
				Epsilon: 1, Matcher: csj.MatcherHopcroftKarp,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 16} {
				par, err := csj.Similarity(b, a, m, &csj.Options{
					Epsilon: 1, Matcher: csj.MatcherHopcroftKarp, Workers: workers,
				})
				if err != nil {
					t.Fatalf("%v workers=%d: %v", m, workers, err)
				}
				if par.Similarity != serial.Similarity {
					t.Errorf("%v workers=%d: similarity %.4f != serial %.4f",
						m, workers, par.Similarity, serial.Similarity)
				}
			}
		}
	}
}

// Approximate methods ignore Workers: identical pair sequences.
func TestWorkersIgnoredByApproximateMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	b := randComm(rng, "B", 50, 4, 8)
	a := randComm(rng, "A", 60, 4, 8)
	for _, m := range csj.ApproximateMethods {
		r1, err := csj.Similarity(b, a, m, &csj.Options{Epsilon: 1})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := csj.Similarity(b, a, m, &csj.Options{Epsilon: 1, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Pairs) != len(r2.Pairs) {
			t.Errorf("%v: Workers changed the approximate result", m)
		}
		for i := range r1.Pairs {
			if r1.Pairs[i] != r2.Pairs[i] {
				t.Errorf("%v: pair %d differs with Workers set", m, i)
			}
		}
	}
}
