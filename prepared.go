package csj

import (
	"context"
	"fmt"
	"time"

	"github.com/opencsj/csj/internal/core"
	"github.com/opencsj/csj/internal/vector"
)

// Footprint approximates the resident size of the prepared community in
// bytes: the user vectors plus both cached MinMax encodings and the
// flat scan views. Byte-capped caches (internal/store) use it for
// eviction accounting.
func (pc *PreparedCommunity) Footprint() int64 { return pc.p.Footprint() }

// Scratch bundles the reusable state of a prepared MinMax join: the
// scan scratch and the internal result buffer. The zero value is ready
// to use. A Scratch is not safe for concurrent use — give each worker
// goroutine its own.
type Scratch struct {
	s    core.Scratch
	cres core.Result
}

// NewScratch returns scratch state for SimilarityPreparedInto.
func NewScratch() *Scratch { return &Scratch{} }

// SimilarityPreparedInto runs a prepared MinMax join (ApMinMax or
// ExMinMax), writing the result into out. It reuses sc's scan state and
// out's Pairs capacity, so at steady state — warm scratch, sufficient
// capacity — a join performs zero allocations (guarded by
// `make storeguard`). out's previous contents are overwritten. sc may
// be nil for a one-shot run.
func SimilarityPreparedInto(b, a *PreparedCommunity, method Method, opts *Options, sc *Scratch, out *Result) error {
	return SimilarityPreparedIntoCtx(context.Background(), b, a, method, opts, sc, out)
}

// SimilarityPreparedIntoCtx is SimilarityPreparedInto with cooperative
// cancellation (see SimilarityCtx for the semantics).
func SimilarityPreparedIntoCtx(ctx context.Context, b, a *PreparedCommunity, method Method, opts *Options, sc *Scratch, out *Result) error {
	o := opts.orDefault()
	if sc == nil {
		sc = &Scratch{}
	}
	return similarityPreparedInto(ctx, b, a, method, &o, &sc.s, &sc.cres, out)
}

// similarityPreparedInto is the allocation-free engine behind every
// prepared join: SimilarityPrepared, SimilarityPreparedInto, and the
// batch engines all land here. o must already be defaulted; s and cres
// hold reusable scan state; out's Pairs capacity is reused when it
// suffices.
func similarityPreparedInto(ctx context.Context, b, a *PreparedCommunity, method Method, o *Options, s *core.Scratch, cres *core.Result, out *Result) error {
	if method != ApMinMax && method != ExMinMax {
		return fmt.Errorf("%w: SimilarityPrepared supports Ap-MinMax and Ex-MinMax, got %v",
			ErrUnknownMethod, method)
	}
	if err := o.Scorer.validate(); err != nil {
		return err
	}
	if !o.AllowSizeImbalance {
		if err := vector.CheckSizes(b.p.Community(), a.p.Community()); err != nil {
			return fmt.Errorf("%w (pass AllowSizeImbalance to override)", err)
		}
	}
	copts := core.Options{Eps: o.Epsilon, EpsVec: o.EpsilonVec, Parts: o.Parts,
		Matcher: o.Matcher.matcher(), DisableSkipOffset: o.DisableSkipOffset,
		ReferenceScan: o.ReferenceScan,
		Done:          ctx.Done()}
	run := core.ApMinMaxPreparedInto
	if method == ExMinMax {
		run = core.ExMinMaxPreparedInto
	}
	start := time.Now()
	if err := run(b.p, a.p, copts, s, cres); err != nil {
		return mapCanceled(ctx, err)
	}
	pairs := out.Pairs[:0]
	if cap(pairs) < len(cres.Pairs) {
		pairs = make([]Pair, 0, len(cres.Pairs))
	}
	for _, p := range cres.Pairs {
		pairs = append(pairs, Pair{B: int(p.B), A: int(p.A)})
	}
	out.Method = method
	out.Pairs = pairs
	out.SizeB = b.Size()
	out.SizeA = a.Size()
	out.Events = Events(cres.Events)
	out.Elapsed = time.Since(start)
	p := 1.0
	if !method.IsExact() && o.P > 0 {
		p = o.P
	}
	out.Similarity = p * float64(len(pairs)) / float64(b.Size())
	out.Blend = nil // out is reused; clear any stale blend first
	applyScorerPrepared(o, b, a, out)
	if o.OnJoinEvents != nil {
		o.OnJoinEvents(out.Events)
	}
	return nil
}
