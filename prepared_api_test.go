package csj_test

import (
	"errors"
	"math/rand"
	"testing"

	csj "github.com/opencsj/csj"
)

// sameResult compares everything except Elapsed (wall-clock noise).
func sameResult(t *testing.T, label string, got, want *csj.Result) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: result nil-ness differs: got %v, want %v", label, got, want)
	}
	if got == nil {
		return
	}
	if got.Method != want.Method || got.Similarity != want.Similarity ||
		got.SizeB != want.SizeB || got.SizeA != want.SizeA {
		t.Fatalf("%s: got %v/%.6f sizes %d,%d; want %v/%.6f sizes %d,%d",
			label, got.Method, got.Similarity, got.SizeB, got.SizeA,
			want.Method, want.Similarity, want.SizeB, want.SizeA)
	}
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got.Pairs), len(want.Pairs))
	}
	for i := range got.Pairs {
		if got.Pairs[i] != want.Pairs[i] {
			t.Fatalf("%s: pair %d = %v, want %v", label, i, got.Pairs[i], want.Pairs[i])
		}
	}
}

// TestSimilarityPreparedIntoEqualsSimilarity drives the scratch-reusing
// Into variant across many random pairs with ONE shared Scratch and one
// reused Result, asserting each answer matches the one-shot API exactly.
func TestSimilarityPreparedIntoEqualsSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sc := csj.NewScratch()
	var res csj.Result
	for trial := 0; trial < 8; trial++ {
		na := 30 + rng.Intn(50)
		nb := (na+1)/2 + rng.Intn(na-(na+1)/2+1)
		b := randComm(rng, "B", nb, 6, 9)
		a := randComm(rng, "A", na, 6, 9)
		opts := &csj.Options{Epsilon: int32(1 + trial%3)}
		pb, err := csj.Precompute(b, opts)
		if err != nil {
			t.Fatal(err)
		}
		pa, err := csj.Precompute(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []csj.Method{csj.ApMinMax, csj.ExMinMax} {
			want, err := csj.Similarity(b, a, m, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := csj.SimilarityPreparedInto(pb, pa, m, opts, sc, &res); err != nil {
				t.Fatal(err)
			}
			sameResult(t, m.String(), &res, want)
		}
	}
}

func TestSimilarityPreparedIntoNilScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	b := randComm(rng, "B", 20, 4, 6)
	opts := &csj.Options{Epsilon: 1}
	pb, err := csj.Precompute(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	var res csj.Result
	if err := csj.SimilarityPreparedInto(pb, pb, csj.ExMinMax, opts, nil, &res); err != nil {
		t.Fatalf("nil scratch should allocate a temporary: %v", err)
	}
	if res.Similarity <= 0 {
		t.Errorf("self-similarity = %f, want > 0", res.Similarity)
	}
}

// TestSimilarityMatrixPreparedEqualsUnprepared: the prepared-handle
// matrix must agree cell for cell with the community-slice matrix.
func TestSimilarityMatrixPreparedEqualsUnprepared(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 5
	comms := make([]*csj.Community, n)
	for i := range comms {
		comms[i] = randComm(rng, string(rune('A'+i)), 24+rng.Intn(16), 5, 8)
	}
	opts := &csj.Options{Epsilon: 2}
	prepared := make([]*csj.PreparedCommunity, n)
	for i, c := range comms {
		p, err := csj.Precompute(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		prepared[i] = p
	}
	for _, m := range []csj.Method{csj.ApMinMax, csj.ExMinMax} {
		want, err := csj.SimilarityMatrix(comms, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := csj.SimilarityMatrixPrepared(prepared, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d cells, want %d", m, len(got), len(want))
		}
		for i := range got {
			if got[i].I != want[i].I || got[i].J != want[i].J || got[i].Skipped != want[i].Skipped {
				t.Fatalf("%v: cell %d shape differs: %+v vs %+v", m, i, got[i], want[i])
			}
			sameResult(t, m.String(), got[i].Result, want[i].Result)
		}
	}
}

func TestSimilarityMatrixPreparedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	p, err := csj.Precompute(randComm(rng, "solo", 10, 3, 5), &csj.Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := csj.SimilarityMatrixPrepared([]*csj.PreparedCommunity{p}, csj.ExMinMax, nil); err == nil {
		t.Error("matrix over one community should fail")
	}
	if _, err := csj.SimilarityMatrixPrepared([]*csj.PreparedCommunity{p, nil}, csj.ExMinMax, nil); err == nil {
		t.Error("nil prepared entry should fail")
	}
}

// TestTopKPreparedEqualsUnprepared: same pivot, candidates, and k give
// the same ranking, approx scores, and exact results either way.
func TestTopKPreparedEqualsUnprepared(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	pivot := randComm(rng, "pivot", 40, 5, 8)
	const n = 8
	cands := make([]*csj.Community, n)
	for i := range cands {
		cands[i] = randComm(rng, string(rune('a'+i)), 24+rng.Intn(40), 5, 8)
	}
	opts := &csj.Options{Epsilon: 1, AllowSizeImbalance: true}
	pp, err := csj.Precompute(pivot, opts)
	if err != nil {
		t.Fatal(err)
	}
	pcs := make([]*csj.PreparedCommunity, n)
	for i, c := range cands {
		p, err := csj.Precompute(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		pcs[i] = p
	}
	want, err := csj.TopK(pivot, cands, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := csj.TopKPrepared(pp, pcs, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Index != want[i].Index || got[i].Name != want[i].Name ||
			got[i].ApproxSimilarity != want[i].ApproxSimilarity || got[i].Skipped != want[i].Skipped {
			t.Fatalf("rank %d: %+v vs %+v", i, got[i], want[i])
		}
		sameResult(t, "topk", got[i].Result, want[i].Result)
	}
}

// TestRankPreparedEqualsUnprepared: prepared ranking matches the
// community-slice ranking for both MinMax methods.
func TestRankPreparedEqualsUnprepared(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	pivot := randComm(rng, "pivot", 36, 5, 8)
	const n = 6
	cands := make([]*csj.Community, n)
	for i := range cands {
		// Mix in one undersized candidate so the Skipped path is compared too.
		size := 20 + rng.Intn(30)
		if i == 2 {
			size = 5
		}
		cands[i] = randComm(rng, string(rune('a'+i)), size, 5, 8)
	}
	opts := &csj.Options{Epsilon: 1}
	pp, err := csj.Precompute(pivot, opts)
	if err != nil {
		t.Fatal(err)
	}
	pcs := make([]*csj.PreparedCommunity, n)
	for i, c := range cands {
		p, err := csj.Precompute(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		pcs[i] = p
	}
	for _, m := range []csj.Method{csj.ApMinMax, csj.ExMinMax} {
		want, err := csj.Rank(pivot, cands, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := csj.RankPrepared(pp, pcs, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d results, want %d", m, len(got), len(want))
		}
		for i := range got {
			if got[i].Index != want[i].Index || got[i].Name != want[i].Name || got[i].Skipped != want[i].Skipped {
				t.Fatalf("%v: rank %d: %+v vs %+v", m, i, got[i], want[i])
			}
			sameResult(t, m.String(), got[i].Result, want[i].Result)
		}
	}
}

func TestRankPreparedRejectsNonMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	opts := &csj.Options{Epsilon: 1}
	pp, err := csj.Precompute(randComm(rng, "p", 20, 3, 5), opts)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := csj.Precompute(randComm(rng, "c", 20, 3, 5), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := csj.RankPrepared(pp, []*csj.PreparedCommunity{pc}, csj.ExSuperEGO, opts); !errors.Is(err, csj.ErrUnknownMethod) {
		t.Errorf("expected ErrUnknownMethod for a non-MinMax method, got %v", err)
	}
	if _, err := csj.TopKPrepared(pp, nil, 1, opts); err == nil {
		t.Error("TopKPrepared with no candidates should fail")
	}
}
