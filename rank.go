package csj

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// Ranked is one entry of a Rank result: a candidate community scored
// against the pivot.
type Ranked struct {
	// Index is the candidate's position in the input slice.
	Index int
	// Name is the candidate community's name.
	Name string
	// Result is the CSJ result against the pivot, nil when Skipped.
	Result *Result
	// Skipped reports that the pair violated the CSJ size precondition
	// and AllowSizeImbalance was not set.
	Skipped bool
	// Err records a per-candidate failure other than the size
	// precondition (e.g. dimension mismatch); such candidates sort last.
	Err error
}

// Rank scores every candidate community against the pivot and returns
// them in descending similarity order — the paper's broadcast
// recommendation: the online system compares a variety of community
// pairs and prioritizes recommendations by the resulting ranking
// (Section 1.2 (ii.b)).
//
// Each pivot/candidate pair is oriented automatically (the smaller
// community becomes B). Pairs that violate ceil(|A|/2) <= |B| are
// skipped unless opts.AllowSizeImbalance is set; skipped and failed
// candidates sort after scored ones.
//
// The per-candidate probes fan out across a bounded worker pool of
// opts.Workers goroutines (0 selects GOMAXPROCS; 1 runs serially). The
// parallel axis is the candidate fan-out: each probe joins serially, so
// the ranking is identical to a Workers=1 run for any worker count.
func Rank(pivot *Community, candidates []*Community, method Method, opts *Options) ([]Ranked, error) {
	return RankCtx(context.Background(), pivot, candidates, method, opts)
}

// RankCtx is Rank with cooperative cancellation. Per-candidate
// failures are still recorded in the entries rather than aborting the
// ranking, but a canceled ctx is fatal: undispatched probes are
// abandoned, in-flight MinMax scans stop at their next checkpoint, and
// ctx's error is returned with no partial ranking.
func RankCtx(ctx context.Context, pivot *Community, candidates []*Community, method Method, opts *Options) ([]Ranked, error) {
	if pivot == nil || len(candidates) == 0 {
		return nil, errors.New("csj: Rank needs a pivot and at least one candidate")
	}
	o := opts.orDefault()
	workers := batchWorkers(&o)
	// Keep each probe serial; the pool is the only parallel axis.
	probeOpts := o
	probeOpts.Workers = 1
	out := make([]Ranked, len(candidates))
	err := runPoolStats(ctx, workers, len(candidates), "rank/probe", o.OnPoolStats, func(_, i int) error {
		cand := candidates[i]
		out[i] = Ranked{Index: i, Name: cand.Name}
		b, a := Orient(pivot, cand)
		res, err := SimilarityCtx(ctx, b, a, method, &probeOpts)
		switch {
		case err == nil:
			out[i].Result = res
		case errors.Is(err, ErrSizeConstraint):
			out[i].Skipped = true
		case ctx.Err() != nil:
			return ctx.Err() // cancellation is fatal, not a candidate failure
		default:
			out[i].Err = err
		}
		return nil // per-candidate failures are recorded, not fatal
	})
	if err != nil {
		return nil, err
	}
	sortRanked(out)
	return out, nil
}

// RankPrepared is Rank over already-prepared communities with a MinMax
// method (ApMinMax or ExMinMax; the other methods do not use the cached
// encodings). The encoding phase is skipped entirely, so repeated
// rankings over a stored corpus re-encode nothing. All views must agree
// on epsilon and parts.
//
// With opts.Index attached (candidate-aligned summaries), candidates
// whose upper bound is zero — provably no matchable user pair under
// epsilon — receive a synthesized zero-similarity result without
// running a join (no OnJoinEvents callback fires for them, since no
// scan ran). A full ranking must score every candidate, so this is the
// only pruning an index can offer here; use RankAbovePrepared or
// TopKPrepared for threshold/top-k pruning.
func RankPrepared(pivot *PreparedCommunity, candidates []*PreparedCommunity, method Method, opts *Options) ([]Ranked, error) {
	return RankPreparedCtx(context.Background(), pivot, candidates, method, opts)
}

// RankPreparedCtx is RankPrepared with cooperative cancellation (see
// RankCtx for the semantics: per-candidate failures are recorded,
// cancellation is fatal).
func RankPreparedCtx(ctx context.Context, pivot *PreparedCommunity, candidates []*PreparedCommunity, method Method, opts *Options) ([]Ranked, error) {
	if pivot == nil || len(candidates) == 0 {
		return nil, errors.New("csj: Rank needs a pivot and at least one candidate")
	}
	for i, pc := range candidates {
		if pc == nil {
			return nil, fmt.Errorf("csj: prepared candidate %d is nil", i)
		}
	}
	o := opts.orDefault()
	bounds, stats, err := rankBounds(pivot, candidates, &o)
	if err != nil {
		return nil, err
	}
	workers := batchWorkers(&o)
	scratches := newScratchPool(workers)
	out := make([]Ranked, len(candidates))
	err = runPoolStats(ctx, workers, len(candidates), "rank/probe", o.OnPoolStats, func(w, i int) error {
		pc := candidates[i]
		out[i] = Ranked{Index: i, Name: pc.Name()}
		b, a := orientPrepared(pivot, pc)
		if bounds != nil && bounds[i] == 0 {
			// The index proves no user pair can match under epsilon:
			// the join's answer is exactly zero, no scan needed.
			out[i].Result = zeroResult(method, b, a, &o)
			return nil
		}
		res, err := similarityPrepared(ctx, b, a, method, &o, scratches.get(w))
		switch {
		case err == nil:
			out[i].Result = res
		case errors.Is(err, ErrSizeConstraint):
			out[i].Skipped = true
		case ctx.Err() != nil:
			return ctx.Err() // cancellation is fatal, not a candidate failure
		case errors.Is(err, ErrUnknownMethod):
			return err // a non-MinMax method fails every probe identically
		default:
			out[i].Err = err
		}
		return nil // per-candidate failures are recorded, not fatal
	})
	if err != nil {
		return nil, err
	}
	sortRanked(out)
	if stats != nil && o.OnIndexStats != nil {
		o.OnIndexStats(*stats)
	}
	return out, nil
}

// rankBounds computes the per-candidate pairs bounds of a full ranking
// when opts.Index is attached (nil bounds otherwise). bounds[i] is -1
// when the size precondition fails from the summary sizes alone — the
// probe must still run so the join records the Skipped outcome exactly
// as the unindexed engine would — and the upper bound otherwise; a
// bound of zero lets the probe synthesize its result without a join.
func rankBounds(pivot *PreparedCommunity, candidates []*PreparedCommunity, o *Options) ([]int, *IndexStats, error) {
	if o.Index == nil {
		return nil, nil, nil
	}
	if o.Index.Len() != len(candidates) {
		return nil, nil, fmt.Errorf("csj: index has %d summaries for %d candidates", o.Index.Len(), len(candidates))
	}
	ps, err := pivot.Summarize(0)
	if err != nil {
		return nil, nil, fmt.Errorf("csj: summarizing pivot %s: %w", pivot.Name(), err)
	}
	stats := &IndexStats{Candidates: int64(len(candidates))}
	bounds := make([]int, len(candidates))
	pSize := pivot.Size()
	for i := range candidates {
		cs := o.Index.Summary(i)
		bSize, aSize := pSize, cs.Size()
		if aSize < bSize {
			bSize, aSize = aSize, bSize
		}
		if !o.AllowSizeImbalance && bSize < (aSize+1)/2 {
			bounds[i] = -1
			stats.Skipped++
			continue
		}
		stats.BoundChecks++
		bounds[i] = upperBoundPairsOpts(ps, cs, o)
		if bounds[i] == 0 {
			stats.Pruned++
		} else {
			stats.Visited++
		}
	}
	return bounds, stats, nil
}

// zeroResult synthesizes the answer of a pruned probe: zero pairs,
// hence a zero CSJ score. With a composite scorer attached the category
// and cosine components are still live — they are functions of the
// communities alone — so the blend is applied exactly as a real join
// would have.
func zeroResult(method Method, b, a *PreparedCommunity, o *Options) *Result {
	out := &Result{Method: method, SizeB: b.Size(), SizeA: a.Size()}
	applyScorerPrepared(o, b, a, out)
	return out
}

// sortRanked orders entries by descending similarity with an explicit
// ascending-index tie-break, so equal scores rank identically
// regardless of visitation or input order; skipped and failed
// candidates keep their relative order after the scored ones.
func sortRanked(out []Ranked) {
	sort.SliceStable(out, func(x, y int) bool {
		rx, ry := out[x].Result, out[y].Result
		switch {
		case rx != nil && ry != nil:
			if rx.Similarity != ry.Similarity {
				return rx.Similarity > ry.Similarity
			}
			return out[x].Index < out[y].Index
		case rx != nil:
			return true
		default:
			return false
		}
	})
}
