package csj

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// Ranked is one entry of a Rank result: a candidate community scored
// against the pivot.
type Ranked struct {
	// Index is the candidate's position in the input slice.
	Index int
	// Name is the candidate community's name.
	Name string
	// Result is the CSJ result against the pivot, nil when Skipped.
	Result *Result
	// Skipped reports that the pair violated the CSJ size precondition
	// and AllowSizeImbalance was not set.
	Skipped bool
	// Err records a per-candidate failure other than the size
	// precondition (e.g. dimension mismatch); such candidates sort last.
	Err error
}

// Rank scores every candidate community against the pivot and returns
// them in descending similarity order — the paper's broadcast
// recommendation: the online system compares a variety of community
// pairs and prioritizes recommendations by the resulting ranking
// (Section 1.2 (ii.b)).
//
// Each pivot/candidate pair is oriented automatically (the smaller
// community becomes B). Pairs that violate ceil(|A|/2) <= |B| are
// skipped unless opts.AllowSizeImbalance is set; skipped and failed
// candidates sort after scored ones.
//
// The per-candidate probes fan out across a bounded worker pool of
// opts.Workers goroutines (0 selects GOMAXPROCS; 1 runs serially). The
// parallel axis is the candidate fan-out: each probe joins serially, so
// the ranking is identical to a Workers=1 run for any worker count.
func Rank(pivot *Community, candidates []*Community, method Method, opts *Options) ([]Ranked, error) {
	return RankCtx(context.Background(), pivot, candidates, method, opts)
}

// RankCtx is Rank with cooperative cancellation. Per-candidate
// failures are still recorded in the entries rather than aborting the
// ranking, but a canceled ctx is fatal: undispatched probes are
// abandoned, in-flight MinMax scans stop at their next checkpoint, and
// ctx's error is returned with no partial ranking.
func RankCtx(ctx context.Context, pivot *Community, candidates []*Community, method Method, opts *Options) ([]Ranked, error) {
	if pivot == nil || len(candidates) == 0 {
		return nil, errors.New("csj: Rank needs a pivot and at least one candidate")
	}
	o := opts.orDefault()
	workers := batchWorkers(&o)
	// Keep each probe serial; the pool is the only parallel axis.
	probeOpts := o
	probeOpts.Workers = 1
	out := make([]Ranked, len(candidates))
	err := runPoolStats(ctx, workers, len(candidates), "rank/probe", o.OnPoolStats, func(_, i int) error {
		cand := candidates[i]
		out[i] = Ranked{Index: i, Name: cand.Name}
		b, a := Orient(pivot, cand)
		res, err := SimilarityCtx(ctx, b, a, method, &probeOpts)
		switch {
		case err == nil:
			out[i].Result = res
		case errors.Is(err, ErrSizeConstraint):
			out[i].Skipped = true
		case ctx.Err() != nil:
			return ctx.Err() // cancellation is fatal, not a candidate failure
		default:
			out[i].Err = err
		}
		return nil // per-candidate failures are recorded, not fatal
	})
	if err != nil {
		return nil, err
	}
	sortRanked(out)
	return out, nil
}

// RankPrepared is Rank over already-prepared communities with a MinMax
// method (ApMinMax or ExMinMax; the other methods do not use the cached
// encodings). The encoding phase is skipped entirely, so repeated
// rankings over a stored corpus re-encode nothing. All views must agree
// on epsilon and parts.
func RankPrepared(pivot *PreparedCommunity, candidates []*PreparedCommunity, method Method, opts *Options) ([]Ranked, error) {
	return RankPreparedCtx(context.Background(), pivot, candidates, method, opts)
}

// RankPreparedCtx is RankPrepared with cooperative cancellation (see
// RankCtx for the semantics: per-candidate failures are recorded,
// cancellation is fatal).
func RankPreparedCtx(ctx context.Context, pivot *PreparedCommunity, candidates []*PreparedCommunity, method Method, opts *Options) ([]Ranked, error) {
	if pivot == nil || len(candidates) == 0 {
		return nil, errors.New("csj: Rank needs a pivot and at least one candidate")
	}
	for i, pc := range candidates {
		if pc == nil {
			return nil, fmt.Errorf("csj: prepared candidate %d is nil", i)
		}
	}
	o := opts.orDefault()
	workers := batchWorkers(&o)
	scratches := newScratchPool(workers)
	out := make([]Ranked, len(candidates))
	err := runPoolStats(ctx, workers, len(candidates), "rank/probe", o.OnPoolStats, func(w, i int) error {
		pc := candidates[i]
		out[i] = Ranked{Index: i, Name: pc.Name()}
		b, a := orientPrepared(pivot, pc)
		res, err := similarityPrepared(ctx, b, a, method, &o, scratches.get(w))
		switch {
		case err == nil:
			out[i].Result = res
		case errors.Is(err, ErrSizeConstraint):
			out[i].Skipped = true
		case ctx.Err() != nil:
			return ctx.Err() // cancellation is fatal, not a candidate failure
		case errors.Is(err, ErrUnknownMethod):
			return err // a non-MinMax method fails every probe identically
		default:
			out[i].Err = err
		}
		return nil // per-candidate failures are recorded, not fatal
	})
	if err != nil {
		return nil, err
	}
	sortRanked(out)
	return out, nil
}

// sortRanked orders entries by descending similarity; skipped and
// failed candidates keep their relative order after the scored ones.
func sortRanked(out []Ranked) {
	sort.SliceStable(out, func(x, y int) bool {
		rx, ry := out[x].Result, out[y].Result
		switch {
		case rx != nil && ry != nil:
			return rx.Similarity > ry.Similarity
		case rx != nil:
			return true
		default:
			return false
		}
	})
}
