package csj

import (
	"errors"
	"sort"
)

// Ranked is one entry of a Rank result: a candidate community scored
// against the pivot.
type Ranked struct {
	// Index is the candidate's position in the input slice.
	Index int
	// Name is the candidate community's name.
	Name string
	// Result is the CSJ result against the pivot, nil when Skipped.
	Result *Result
	// Skipped reports that the pair violated the CSJ size precondition
	// and AllowSizeImbalance was not set.
	Skipped bool
	// Err records a per-candidate failure other than the size
	// precondition (e.g. dimension mismatch); such candidates sort last.
	Err error
}

// Rank scores every candidate community against the pivot and returns
// them in descending similarity order — the paper's broadcast
// recommendation: the online system compares a variety of community
// pairs and prioritizes recommendations by the resulting ranking
// (Section 1.2 (ii.b)).
//
// Each pivot/candidate pair is oriented automatically (the smaller
// community becomes B). Pairs that violate ceil(|A|/2) <= |B| are
// skipped unless opts.AllowSizeImbalance is set; skipped and failed
// candidates sort after scored ones.
func Rank(pivot *Community, candidates []*Community, method Method, opts *Options) ([]Ranked, error) {
	if pivot == nil || len(candidates) == 0 {
		return nil, errors.New("csj: Rank needs a pivot and at least one candidate")
	}
	out := make([]Ranked, len(candidates))
	for i, cand := range candidates {
		out[i] = Ranked{Index: i, Name: cand.Name}
		b, a := Orient(pivot, cand)
		res, err := Similarity(b, a, method, opts)
		switch {
		case err == nil:
			out[i].Result = res
		case errors.Is(err, ErrSizeConstraint):
			out[i].Skipped = true
		default:
			out[i].Err = err
		}
	}
	sort.SliceStable(out, func(x, y int) bool {
		rx, ry := out[x].Result, out[y].Result
		switch {
		case rx != nil && ry != nil:
			return rx.Similarity > ry.Similarity
		case rx != nil:
			return true
		default:
			return false
		}
	})
	return out, nil
}
