package csj

import (
	"math"

	"github.com/opencsj/csj/internal/ego"
	"github.com/opencsj/csj/internal/vector"
)

// This file applies the composite scorer (Options.Scorer / ScorerSpec)
// to finished join results. The CSJ score is computed by the engines;
// the two auxiliary signals are functions of the communities alone:
//
//   - category overlap: 1 when both communities declare the same home
//     category (both >= 0), else 0 — two "unknown" categories do not
//     count as agreement;
//   - centroid cosine: the cosine similarity of the two normalized
//     centroid profiles (ego.NormalizedCentroid), 0 when either
//     centroid is the zero vector.
//
// Both live in [0, 1], so the normalized blend does too — which is why
// every bound in the indexed engines lifts soundly (scoreBound) and the
// cluster merge needs no changes.

// categoryOverlap is the [0, 1] category signal.
func categoryOverlap(catB, catA int) float64 {
	if catB >= 0 && catB == catA {
		return 1
	}
	return 0
}

// cosine returns the cosine similarity of two non-negative profiles,
// 0 when either is the zero vector. Non-negative inputs keep the
// result in [0, 1]; it is clamped against float drift so bounds built
// on "cosine <= 1" hold exactly.
func cosine(x, y []float64) float64 {
	var dot, nx, ny float64
	for i := range x {
		dot += x[i] * y[i]
		nx += x[i] * x[i]
		ny += y[i] * y[i]
	}
	if nx == 0 || ny == 0 {
		return 0
	}
	c := dot / (math.Sqrt(nx) * math.Sqrt(ny))
	if c > 1 {
		c = 1
	}
	if c < 0 {
		c = 0
	}
	return c
}

// blendScore folds the components into the final similarity.
func blendScore(sc *ScorerSpec, blend *ScoreBlend) float64 {
	wc, wcat, wcos := sc.normalized()
	return wc*blend.CSJ + wcat*blend.Category + wcos*blend.Cosine
}

// scoreBound lifts a CSJ-score upper bound into the composite domain:
// the blend of any pair whose CSJ score is <= csjBound is <= the
// returned value, because category and cosine never exceed 1. Without
// a scorer it is the identity, so the indexed engines' pruning logic
// reads the same either way. The p discount must already be folded
// into csjBound (it applies to the CSJ component only).
func scoreBound(sc *ScorerSpec, csjBound float64) float64 {
	if sc == nil {
		return csjBound
	}
	wc, wcat, wcos := sc.normalized()
	return wc*csjBound + wcat + wcos
}

// applyScorerRaw rewrites out.Similarity into the composite blend for
// a one-shot join of raw communities. No-op without a scorer.
func applyScorerRaw(o *Options, ib, ia *vector.Community, out *Result) {
	if o.Scorer == nil {
		return
	}
	out.Blend = &ScoreBlend{
		CSJ:      out.Similarity,
		Category: categoryOverlap(ib.Category, ia.Category),
		Cosine:   cosine(ego.NormalizedCentroid(ib), ego.NormalizedCentroid(ia)),
	}
	out.Similarity = blendScore(o.Scorer, out.Blend)
}

// applyScorerPrepared is applyScorerRaw for prepared communities: the
// normalized centroids come from the views' lazy caches, so steady-
// state scored joins do not recompute them.
func applyScorerPrepared(o *Options, b, a *PreparedCommunity, out *Result) {
	if o.Scorer == nil {
		return
	}
	cb, ca := b.p.Community(), a.p.Community()
	out.Blend = &ScoreBlend{
		CSJ:      out.Similarity,
		Category: categoryOverlap(cb.Category, ca.Category),
		Cosine:   cosine(b.centroid(), a.centroid()),
	}
	out.Similarity = blendScore(o.Scorer, out.Blend)
}
