package csj_test

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	csj "github.com/opencsj/csj"
)

// randEpsVec synthesizes a heterogeneous per-dimension tolerance in a
// band around scale, guaranteed not all-equal for d >= 2.
func randEpsVec(rng *rand.Rand, d int, scale int32) []int32 {
	vec := make([]int32, d)
	for j := range vec {
		vec[j] = rng.Int31n(scale + 1)
	}
	if d >= 2 && vec[0] == vec[1] {
		vec[0]++
	}
	return vec
}

// TestSpecAllEqualVecMatchesScalar is the public canonicalization
// property: an all-equal epsilon vector must be cell-for-cell
// identical to the scalar spelling across every method — including
// Baseline and SuperEGO, which only understand scalars, because the
// all-equal vector collapses before method dispatch.
func TestSpecAllEqualVecMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 8; trial++ {
		d := 1 + rng.Intn(5)
		eps := rng.Int31n(3)
		vec := make([]int32, d)
		for j := range vec {
			vec[j] = eps
		}
		nB := 5 + rng.Intn(15)
		b := randComm(rng, "B", nB, d, 8)
		a := randComm(rng, "A", nB+rng.Intn(nB), d, 8) // |A| < 2|B| keeps the size precondition

		for _, m := range csj.Methods {
			sres, err := csj.Similarity(b, a, m, &csj.Options{Epsilon: eps, VerifyInteger: true})
			if err != nil {
				t.Fatalf("%v scalar: %v", m, err)
			}
			vres, err := csj.Similarity(b, a, m, &csj.Options{EpsilonVec: vec, VerifyInteger: true})
			if err != nil {
				t.Fatalf("%v vector: %v", m, err)
			}
			if sres.Similarity != vres.Similarity || !reflect.DeepEqual(sres.Pairs, vres.Pairs) {
				t.Fatalf("%v: all-equal vector diverges from scalar (sim %v vs %v)",
					m, sres.Similarity, vres.Similarity)
			}
		}
		// Prepared path: both spellings must build compatible views and
		// join identically.
		ps, err := csj.Precompute(b, &csj.Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		pv, err := csj.Precompute(a, &csj.Options{EpsilonVec: vec})
		if err != nil {
			t.Fatal(err)
		}
		res, err := csj.SimilarityPrepared(ps, pv, csj.ExMinMax, &csj.Options{EpsilonVec: vec})
		if err != nil {
			t.Fatalf("mixed-spelling prepared join: %v", err)
		}
		want, err := csj.Similarity(b, a, csj.ExMinMax, &csj.Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		if res.Similarity != want.Similarity {
			t.Fatalf("prepared all-equal vector diverges: %v vs %v", res.Similarity, want.Similarity)
		}
	}
}

// TestEpsilonVecRequiresMinMax: a genuinely heterogeneous vector must
// be rejected by the scalar-only method families with the pinned
// sentinel, and accepted by the MinMax family.
func TestEpsilonVecRequiresMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	b := randComm(rng, "B", 6, 3, 8)
	a := randComm(rng, "A", 8, 3, 8)
	vec := []int32{0, 2, 1}
	for _, m := range []csj.Method{csj.ApBaseline, csj.ExBaseline, csj.ApSuperEGO, csj.ExSuperEGO} {
		if _, err := csj.Similarity(b, a, m, &csj.Options{EpsilonVec: vec}); !errors.Is(err, csj.ErrEpsilonVecUnsupported) {
			t.Fatalf("%v: err = %v, want ErrEpsilonVecUnsupported", m, err)
		}
	}
	for _, m := range []csj.Method{csj.ApMinMax, csj.ExMinMax} {
		if _, err := csj.Similarity(b, a, m, &csj.Options{EpsilonVec: vec}); err != nil {
			t.Fatalf("%v rejected a valid epsilon vector: %v", m, err)
		}
	}
	if _, err := csj.Similarity(b, a, csj.ExMinMax, &csj.Options{EpsilonVec: []int32{1, 2}}); err == nil {
		t.Fatal("length-mismatched vector accepted")
	}
	if _, err := csj.Similarity(b, a, csj.ExMinMax, &csj.Options{EpsilonVec: []int32{1, -2, 0}}); err == nil {
		t.Fatal("negative vector entry accepted")
	}
}

// TestEpsilonVecIndexedExactness is the heterogeneous-tolerance
// pruning soundness property: with a per-dimension vector, the indexed
// top-k and threshold-ranking engines must return, cell for cell, the
// answers of the unpruned engines. Part of `make specguard`.
func TestEpsilonVecIndexedExactness(t *testing.T) {
	for _, seed := range []int64{41, 42, 43} {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 3; trial++ {
			d := 2 + rng.Intn(5)
			noise := int32(500 + rng.Intn(2500))
			vec := randEpsVec(rng, d, 4000)
			k := 1 + rng.Intn(6)
			minSim := rng.Float64() * 0.9
			opts := &csj.Options{EpsilonVec: vec, Workers: 1}
			pivot, pcs, ix := indexedCorpus(t, rng, 36, 1+rng.Intn(10), d, noise, opts)
			t.Logf("seed=%d trial=%d vec=%v k=%d minSim=%.3f", seed, trial, vec, k, minSim)

			wantTop := exactTopKReference(t, pivot, pcs, k, opts)
			iopts := *opts
			iopts.Index = ix
			gotTop, err := csj.TopKPrepared(pivot, pcs, k, &iopts)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotTop) != len(wantTop) {
				t.Fatalf("seed %d: indexed top-k has %d entries, reference %d", seed, len(gotTop), len(wantTop))
			}
			for i := range gotTop {
				w := wantTop[i]
				if gotTop[i].Index != w.Index || gotTop[i].Skipped != w.Skipped {
					t.Fatalf("seed %d: entry %d = cand %d (skipped=%v), reference cand %d (skipped=%v)",
						seed, i, gotTop[i].Index, gotTop[i].Skipped, w.Index, w.Skipped)
				}
				if gotTop[i].Result != nil && gotTop[i].Result.Similarity != w.Result.Similarity {
					t.Fatalf("seed %d: entry %d similarity %v, reference %v",
						seed, i, gotTop[i].Result.Similarity, w.Result.Similarity)
				}
			}

			wantAbove, err := csj.RankAbovePrepared(pivot, pcs, csj.ExMinMax, minSim, opts)
			if err != nil {
				t.Fatal(err)
			}
			gotAbove, err := csj.RankAbovePrepared(pivot, pcs, csj.ExMinMax, minSim, &iopts)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotAbove) != len(wantAbove) {
				t.Fatalf("seed %d: indexed RankAbove has %d entries, reference %d", seed, len(gotAbove), len(wantAbove))
			}
			for i := range gotAbove {
				if gotAbove[i].Index != wantAbove[i].Index ||
					gotAbove[i].Result.Similarity != wantAbove[i].Result.Similarity {
					t.Fatalf("seed %d: RankAbove entry %d diverges", seed, i)
				}
			}
		}
	}
}

// TestScorerIndexedExactness: composite-scorer pruning must stay
// exact — the lifted bounds may only widen, never cut a true answer.
func TestScorerIndexedExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	sc := &csj.ScorerSpec{CSJWeight: 2, CategoryWeight: 1, CosineWeight: 1}
	opts := &csj.Options{Epsilon: 2000, Workers: 1, Scorer: sc}
	pivot, pcs, ix := indexedCorpus(t, rng, 32, 6, 4, 1200, opts)

	k := 5
	want := exactTopKReference(t, pivot, pcs, k, opts)
	iopts := *opts
	iopts.Index = ix
	got, err := csj.TopKPrepared(pivot, pcs, k, &iopts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scored indexed top-k has %d entries, reference %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Index != want[i].Index {
			t.Fatalf("entry %d = cand %d, reference cand %d", i, got[i].Index, want[i].Index)
		}
		if got[i].Result != nil && got[i].Result.Similarity != want[i].Result.Similarity {
			t.Fatalf("entry %d similarity %v, reference %v", i, got[i].Result.Similarity, want[i].Result.Similarity)
		}
		if got[i].Result != nil && got[i].ApproxSimilarity < got[i].Result.Similarity {
			t.Fatalf("entry %d lifted bound %v below blended similarity %v",
				i, got[i].ApproxSimilarity, got[i].Result.Similarity)
		}
	}

	minSim := 0.4
	wantAbove, err := csj.RankAbovePrepared(pivot, pcs, csj.ExMinMax, minSim, opts)
	if err != nil {
		t.Fatal(err)
	}
	gotAbove, err := csj.RankAbovePrepared(pivot, pcs, csj.ExMinMax, minSim, &iopts)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotAbove) != len(wantAbove) {
		t.Fatalf("scored RankAbove has %d entries, reference %d", len(gotAbove), len(wantAbove))
	}
	for i := range gotAbove {
		if gotAbove[i].Index != wantAbove[i].Index ||
			gotAbove[i].Result.Similarity != wantAbove[i].Result.Similarity {
			t.Fatalf("RankAbove entry %d diverges", i)
		}
	}
}

// TestScorerBlend pins the composite score on a hand-built pair: CSJ 0
// (no profile matches under eps 0), category overlap 1, cosine 1
// (parallel centroids), so a (2, 1, 1)-weighted blend is exactly 0.5.
func TestScorerBlend(t *testing.T) {
	b := &csj.Community{Name: "B", Category: 3, Users: []csj.Vector{{1, 1}}}
	a := &csj.Community{Name: "A", Category: 3, Users: []csj.Vector{{0, 2}, {2, 0}}}
	sc := &csj.ScorerSpec{CSJWeight: 2, CategoryWeight: 1, CosineWeight: 1}
	res, err := csj.Similarity(b, a, csj.ExMinMax, &csj.Options{Epsilon: 0, Scorer: sc})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blend == nil {
		t.Fatal("scored result has no Blend")
	}
	if res.Blend.CSJ != 0 || res.Blend.Category != 1 {
		t.Fatalf("Blend = %+v, want CSJ 0 and Category 1", res.Blend)
	}
	// b's centroid normalizes to (1, 1) and a's to (0.5, 0.5): parallel,
	// cosine 1 up to float rounding.
	if math.Abs(res.Blend.Cosine-1) > 1e-12 {
		t.Fatalf("Blend.Cosine = %v, want 1", res.Blend.Cosine)
	}
	if math.Abs(res.Similarity-0.5) > 1e-12 {
		t.Fatalf("blended similarity = %v, want 0.5", res.Similarity)
	}

	// Prepared path must blend identically, including on reused results.
	pb, err := csj.Precompute(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := csj.Precompute(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := csj.SimilarityPrepared(pb, pa, csj.ExMinMax, &csj.Options{Epsilon: 0, Scorer: sc})
	if err != nil {
		t.Fatal(err)
	}
	if pres.Similarity != res.Similarity || *pres.Blend != *res.Blend {
		t.Fatalf("prepared blend diverges: %v %+v vs %v %+v",
			pres.Similarity, pres.Blend, res.Similarity, res.Blend)
	}

	// Different categories: the category component drops to 0. Two
	// unknown categories (-1) must not count as agreement either.
	a2 := &csj.Community{Name: "A2", Category: 9, Users: a.Users}
	res2, err := csj.Similarity(b, a2, csj.ExMinMax, &csj.Options{Epsilon: 0, Scorer: sc})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Blend.Category != 0 {
		t.Fatalf("mismatched categories blend Category = %v, want 0", res2.Blend.Category)
	}
	bu := &csj.Community{Name: "BU", Category: -1, Users: b.Users}
	au := &csj.Community{Name: "AU", Category: -1, Users: a.Users}
	res3, err := csj.Similarity(bu, au, csj.ExMinMax, &csj.Options{Epsilon: 0, Scorer: sc})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Blend.Category != 0 {
		t.Fatalf("two unknown categories blend Category = %v, want 0", res3.Blend.Category)
	}
}

// TestScorerValidationAndNoop: invalid scorers are rejected with the
// pinned sentinel on every entry point; a scorer that normalizes to
// the pure CSJ score is canonicalized away entirely (no Blend).
func TestScorerValidationAndNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	b := randComm(rng, "B", 5, 3, 6)
	a := randComm(rng, "A", 6, 3, 6)
	for _, sc := range []*csj.ScorerSpec{
		{CSJWeight: -1, CategoryWeight: 1},
		{},
	} {
		if _, err := csj.Similarity(b, a, csj.ExMinMax, &csj.Options{Epsilon: 1, Scorer: sc}); !errors.Is(err, csj.ErrBadScorer) {
			t.Fatalf("scorer %+v: err = %v, want ErrBadScorer", sc, err)
		}
		pb, err := csj.Precompute(b, nil)
		if err != nil {
			t.Fatal(err)
		}
		pa, err := csj.Precompute(a, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := csj.SimilarityPrepared(pb, pa, csj.ExMinMax, &csj.Options{Epsilon: 1, Scorer: sc}); !errors.Is(err, csj.ErrBadScorer) {
			t.Fatalf("prepared scorer %+v: err = %v, want ErrBadScorer", sc, err)
		}
	}
	plain, err := csj.Similarity(b, a, csj.ExMinMax, &csj.Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	noop, err := csj.Similarity(b, a, csj.ExMinMax, &csj.Options{Epsilon: 1, Scorer: &csj.ScorerSpec{CSJWeight: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if noop.Similarity != plain.Similarity || noop.Blend != nil {
		t.Fatalf("no-op scorer not canonicalized away: sim %v vs %v, blend %+v",
			noop.Similarity, plain.Similarity, noop.Blend)
	}
}

// TestMatchSpecDigest pins the spec-digest contract the store's view
// cache keys on: canonical spellings collapse, distinct specs (even
// ones whose naive string encodings would collide) stay distinct, and
// the digest is deterministic.
func TestMatchSpecDigest(t *testing.T) {
	const d = 2
	s1 := csj.MatchSpec{EpsilonVec: []int32{1, 23}}
	s2 := csj.MatchSpec{EpsilonVec: []int32{12, 3}}
	if s1.Digest(d) == s2.Digest(d) {
		t.Fatal("epsilon vectors [1,23] and [12,3] share a digest")
	}
	if s1.Digest(d) != s1.Digest(d) {
		t.Fatal("digest is not deterministic")
	}

	// Canonicalization: all-equal vector == scalar, parts 0 == the
	// explicit default, no-op scorer == no scorer.
	if (csj.MatchSpec{EpsilonVec: []int32{2, 2}}).Digest(d) != (csj.MatchSpec{Epsilon: 2}).Digest(d) {
		t.Fatal("all-equal vector digests differently from its scalar")
	}
	if (csj.MatchSpec{Epsilon: 1}).Digest(d) != (csj.MatchSpec{Epsilon: 1, Parts: csj.DefaultParts}).Digest(d) {
		t.Fatal("default parts digests differently from the explicit default")
	}
	if (csj.MatchSpec{Epsilon: 1, Scorer: &csj.ScorerSpec{CSJWeight: 3}}).Digest(d) != (csj.MatchSpec{Epsilon: 1}).Digest(d) {
		t.Fatal("no-op scorer digests differently from no scorer")
	}

	// Distinctions that must hold.
	if (csj.MatchSpec{Epsilon: 1}).Digest(d) == (csj.MatchSpec{Epsilon: 2}).Digest(d) {
		t.Fatal("different scalars share a digest")
	}
	scored := csj.MatchSpec{Epsilon: 1, Scorer: &csj.ScorerSpec{CSJWeight: 1, CosineWeight: 1}}
	if scored.Digest(d) == (csj.MatchSpec{Epsilon: 1}).Digest(d) {
		t.Fatal("a real scorer does not change the digest")
	}
	// ViewSpec strips the scorer: view digests are scorer-independent.
	if scored.ViewSpec().Digest(d) != (csj.MatchSpec{Epsilon: 1}).Digest(d) {
		t.Fatal("ViewSpec digest still depends on the scorer")
	}
	// Scorer weights digest by normalized value: (1, 0, 1) == (2, 0, 2).
	if scored.Digest(d) != (csj.MatchSpec{Epsilon: 1, Scorer: &csj.ScorerSpec{CSJWeight: 2, CosineWeight: 2}}).Digest(d) {
		t.Fatal("proportional scorer weights digest differently")
	}
}
