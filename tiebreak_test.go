package csj_test

import (
	"math/rand"
	"testing"

	csj "github.com/opencsj/csj"
)

// Duplicate-score regression suite: equal similarities must rank by
// ascending candidate index in every engine, so neither input order,
// visitation order, nor the best-first indexed ordering can change a
// returned ranking.

// cloneCommunity deep-copies a community under a new name (identical
// profiles, hence identical similarity against any pivot).
func cloneCommunity(c *csj.Community, name string) *csj.Community {
	users := make([]csj.Vector, len(c.Users))
	for i, u := range c.Users {
		users[i] = append(csj.Vector(nil), u...)
	}
	return &csj.Community{Name: name, Category: c.Category, Users: users}
}

// duplicateCorpus: pivot plus candidates where indices 1, 3, 5 are
// identical clones (equal scores) interleaved with distinct fillers.
func duplicateCorpus(t *testing.T) (*csj.Community, []*csj.Community) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	base := randBase(rng, 4)
	pivot := clusteredComm(rng, "pivot", 30, base, 400)
	twin := clusteredComm(rng, "twin", 30, base, 400)
	cands := []*csj.Community{
		clusteredComm(rng, "f0", 30, base, 400),
		cloneCommunity(twin, "dup1"),
		clusteredComm(rng, "f2", 30, base, 400),
		cloneCommunity(twin, "dup3"),
		clusteredComm(rng, "f4", 30, base, 400),
		cloneCommunity(twin, "dup5"),
	}
	return pivot, cands
}

// assertDupOrder checks that among the three clones, returned order is
// by ascending candidate index.
func assertDupOrder(t *testing.T, order []int) {
	t.Helper()
	var dups []int
	for _, idx := range order {
		if idx == 1 || idx == 3 || idx == 5 {
			dups = append(dups, idx)
		}
	}
	if len(dups) != 3 || dups[0] != 1 || dups[1] != 3 || dups[2] != 5 {
		t.Fatalf("duplicate-score candidates returned as %v, want [1 3 5]", dups)
	}
}

func TestRankDuplicateScoreTieBreak(t *testing.T) {
	pivot, cands := duplicateCorpus(t)
	opts := &csj.Options{Epsilon: 800}
	ranked, err := csj.Rank(pivot, cands, csj.ExMinMax, opts)
	if err != nil {
		t.Fatal(err)
	}
	order := make([]int, len(ranked))
	for i, r := range ranked {
		if r.Result == nil {
			t.Fatalf("candidate %s not scored", r.Name)
		}
		order[i] = r.Index
	}
	assertDupOrder(t, order)
	// Identical communities must actually tie — otherwise the test
	// proves nothing about tie-breaking.
	var sims []float64
	for _, r := range ranked {
		if r.Index == 1 || r.Index == 3 || r.Index == 5 {
			sims = append(sims, r.Result.Similarity)
		}
	}
	if sims[0] != sims[1] || sims[1] != sims[2] {
		t.Fatalf("clones scored differently: %v", sims)
	}
}

func TestTopKDuplicateScoreTieBreak(t *testing.T) {
	pivot, cands := duplicateCorpus(t)
	opts := &csj.Options{Epsilon: 800}
	top, err := csj.TopK(pivot, cands, len(cands), opts)
	if err != nil {
		t.Fatal(err)
	}
	order := make([]int, len(top))
	for i, r := range top {
		order[i] = r.Index
	}
	assertDupOrder(t, order)
}

func TestTopKIndexedDuplicateScoreTieBreak(t *testing.T) {
	pivot, cands := duplicateCorpus(t)
	opts := &csj.Options{Epsilon: 800}
	pp, err := csj.Precompute(pivot, opts)
	if err != nil {
		t.Fatal(err)
	}
	pcs := make([]*csj.PreparedCommunity, len(cands))
	for i, c := range cands {
		if pcs[i], err = csj.Precompute(c, opts); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := csj.IndexPrepared(pcs, 0)
	if err != nil {
		t.Fatal(err)
	}
	iopts := *opts
	iopts.Index = ix
	top, err := csj.TopKPrepared(pp, pcs, len(pcs), &iopts)
	if err != nil {
		t.Fatal(err)
	}
	order := make([]int, len(top))
	for i, r := range top {
		order[i] = r.Index
	}
	assertDupOrder(t, order)

	// The indexed and two-phase engines must agree on the full order:
	// both rank exactly here (k covers everything, exact refinement
	// covers 2k >= all candidates).
	ref, err := csj.TopKPrepared(pp, pcs, len(pcs), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if ref[i].Index != top[i].Index {
			t.Fatalf("entry %d: indexed cand %d, two-phase cand %d", i, top[i].Index, ref[i].Index)
		}
	}
}
