package csj

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// TopKResult is one entry of a TopK answer.
type TopKResult struct {
	// Index is the candidate's position in the input slice.
	Index int
	// Name is the candidate community's name.
	Name string
	// ApproxSimilarity is the phase-1 (Ap-MinMax) score.
	ApproxSimilarity float64
	// Result is the phase-2 (Ex-MinMax) result; nil when the candidate
	// was eliminated in phase 1 or skipped.
	Result *Result
	// Skipped reports a violated size precondition.
	Skipped bool
}

// TopK returns the k candidate communities most similar to the pivot,
// using the paper's two-phase workflow: the fast approximate method
// prefilters all candidates, and the exact method refines only the
// survivors ("the time-consuming exact method uses the results of the
// fast approximate method as input to alleviate its total execution
// overhead", Section 3). The exact method re-ranks the survivors, so
// the returned order reflects exact similarities.
//
// Each pair is oriented automatically; pairs violating
// ceil(|A|/2) <= |B| are skipped unless opts.AllowSizeImbalance is set.
// The refinement pool is 2k (or all candidates when fewer score), which
// absorbs the approximate ranking's noise; candidates eliminated in
// phase 1 carry only their approximate score.
//
// The pivot and every candidate are encoded once and reused by both
// phases, and the phase-1 and phase-2 probes fan out across a bounded
// worker pool of opts.Workers goroutines (0 selects GOMAXPROCS; 1 runs
// serially). Each probe is an independent serial join, so the answer is
// identical to a Workers=1 run for any worker count.
func TopK(pivot *Community, candidates []*Community, k int, opts *Options) ([]TopKResult, error) {
	return TopKCtx(context.Background(), pivot, candidates, k, opts)
}

// TopKCtx is TopK with cooperative cancellation: a canceled ctx stops
// both phases' probe pools, interrupts in-flight scans at their next
// checkpoint, and returns ctx's error. No partial answer is returned.
func TopKCtx(ctx context.Context, pivot *Community, candidates []*Community, k int, opts *Options) ([]TopKResult, error) {
	if pivot == nil || len(candidates) == 0 {
		return nil, errors.New("csj: TopK needs a pivot and at least one candidate")
	}
	if k <= 0 {
		return nil, fmt.Errorf("csj: TopK needs k >= 1, got %d", k)
	}
	o := opts.orDefault()
	workers := batchWorkers(&o)

	pp, err := Precompute(pivot, opts)
	if err != nil {
		return nil, fmt.Errorf("csj: preparing pivot %s: %w", pivot.Name, err)
	}
	pcs := make([]*PreparedCommunity, len(candidates))
	if err := runPoolStats(ctx, workers, len(candidates), "topk/prepare", o.OnPoolStats, func(_, i int) error {
		pc, err := Precompute(candidates[i], opts)
		if err != nil {
			return fmt.Errorf("csj: preparing candidate %s: %w", candidates[i].Name, err)
		}
		pcs[i] = pc
		return nil
	}); err != nil {
		return nil, err
	}
	return topKPhases(ctx, pp, pcs, k, &o, workers)
}

// TopKPrepared is TopK over already-prepared communities: the encoding
// phase is skipped entirely, so repeated top-k queries over a stored
// corpus (the community store's workload) re-encode nothing. All views
// must agree on epsilon and parts.
//
// With opts.Index attached (candidate-aligned summaries), the query
// runs on the best-first indexed engine instead of the two-phase
// workflow: candidates are visited in descending upper-bound order and
// pruned against the running kth-best exact similarity, so most never
// run a join at all (see TopKIndexed). The indexed answer is the TRUE
// Ex-MinMax top-k — a stronger result than the approximate-gated
// two-phase answer, which can miss a candidate the Ap-MinMax gate
// underscores — and each entry's ApproxSimilarity carries the index
// upper bound rather than an Ap-MinMax score.
func TopKPrepared(pivot *PreparedCommunity, candidates []*PreparedCommunity, k int, opts *Options) ([]TopKResult, error) {
	return TopKPreparedCtx(context.Background(), pivot, candidates, k, opts)
}

// TopKPreparedCtx is TopKPrepared with cooperative cancellation (see
// TopKCtx for the semantics).
func TopKPreparedCtx(ctx context.Context, pivot *PreparedCommunity, candidates []*PreparedCommunity, k int, opts *Options) ([]TopKResult, error) {
	if pivot == nil || len(candidates) == 0 {
		return nil, errors.New("csj: TopK needs a pivot and at least one candidate")
	}
	if k <= 0 {
		return nil, fmt.Errorf("csj: TopK needs k >= 1, got %d", k)
	}
	for i, pc := range candidates {
		if pc == nil {
			return nil, fmt.Errorf("csj: prepared candidate %d is nil", i)
		}
	}
	o := opts.orDefault()
	if o.Index != nil {
		ics, err := indexedFromPrepared(candidates, o.Index)
		if err != nil {
			return nil, err
		}
		return topKIndexed(ctx, pivot, ics, k, &o)
	}
	workers := batchWorkers(&o)
	return topKPhases(ctx, pivot, candidates, k, &o, workers)
}

// topKPhases is the two-phase engine shared by TopKCtx and
// TopKPreparedCtx: approximate prefilter over all candidates, exact
// refinement of the 2k survivors.
func topKPhases(ctx context.Context, pp *PreparedCommunity, pcs []*PreparedCommunity, k int, o *Options, workers int) ([]TopKResult, error) {
	scratches := newScratchPool(workers)

	// Phase 1: approximate prefilter, one probe per candidate.
	results := make([]TopKResult, len(pcs))
	err := runPoolStats(ctx, workers, len(pcs), "topk/phase1", o.OnPoolStats, func(w, i int) error {
		results[i] = TopKResult{Index: i, Name: pcs[i].Name(), Skipped: true}
		b, a := orientPrepared(pp, pcs[i])
		res, err := similarityPrepared(ctx, b, a, ApMinMax, o, scratches.get(w))
		if err != nil {
			if errors.Is(err, ErrSizeConstraint) {
				return nil
			}
			return fmt.Errorf("csj: phase 1 on %s: %w", pcs[i].Name(), err)
		}
		results[i].Skipped = false
		results[i].ApproxSimilarity = res.Similarity
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(results, func(x, y int) bool {
		if results[x].Skipped != results[y].Skipped {
			return !results[x].Skipped
		}
		if results[x].ApproxSimilarity != results[y].ApproxSimilarity {
			return results[x].ApproxSimilarity > results[y].ApproxSimilarity
		}
		// Explicit index tie-break: equal scores must rank identically
		// regardless of visitation or input order.
		return results[x].Index < results[y].Index
	})

	// Phase 2: exact refinement of the survivors.
	pool := 2 * k
	refine := make([]int, 0, pool)
	for i := range results {
		if results[i].Skipped || len(refine) >= pool {
			break
		}
		refine = append(refine, i)
	}
	err = runPoolStats(ctx, workers, len(refine), "topk/phase2", o.OnPoolStats, func(w, x int) error {
		ri := refine[x]
		b, a := orientPrepared(pp, pcs[results[ri].Index])
		res, err := similarityPrepared(ctx, b, a, ExMinMax, o, scratches.get(w))
		if err != nil {
			return fmt.Errorf("csj: phase 2 on %s: %w", results[ri].Name, err)
		}
		results[ri].Result = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(results, func(x, y int) bool {
		rx, ry := results[x].Result, results[y].Result
		switch {
		case rx != nil && ry != nil:
			if rx.Similarity != ry.Similarity {
				return rx.Similarity > ry.Similarity
			}
		case rx != nil:
			return true
		case ry != nil:
			return false
		case results[x].Skipped != results[y].Skipped:
			return !results[x].Skipped
		default:
			if results[x].ApproxSimilarity != results[y].ApproxSimilarity {
				return results[x].ApproxSimilarity > results[y].ApproxSimilarity
			}
		}
		// Explicit index tie-break (see phase-1 sort).
		return results[x].Index < results[y].Index
	})
	if k > len(results) {
		k = len(results)
	}
	return results[:k], nil
}
