package csj_test

import (
	"math/rand"
	"path/filepath"
	"testing"

	csj "github.com/opencsj/csj"
)

// overlapped builds a candidate sharing a given fraction of the pivot's
// users (exact profile copies).
func overlapped(rng *rand.Rand, name string, size int, pivot *csj.Community, overlap float64) *csj.Community {
	users := make([]csj.Vector, 0, size)
	for _, idx := range rng.Perm(pivot.Size())[:int(overlap*float64(size))] {
		u := make(csj.Vector, len(pivot.Users[idx]))
		copy(u, pivot.Users[idx])
		users = append(users, u)
	}
	for len(users) < size {
		u := make(csj.Vector, pivot.Dim())
		likes := 100 + rng.Intn(300)
		for i := 0; i < likes; i++ {
			u[rng.Intn(len(u))]++
		}
		users = append(users, u)
	}
	rng.Shuffle(len(users), func(i, j int) { users[i], users[j] = users[j], users[i] })
	return &csj.Community{Name: name, Users: users}
}

func entropyComm(rng *rand.Rand, name string, size, d int) *csj.Community {
	users := make([]csj.Vector, size)
	for i := range users {
		u := make(csj.Vector, d)
		likes := 100 + rng.Intn(300)
		for k := 0; k < likes; k++ {
			u[rng.Intn(d)]++
		}
		users[i] = u
	}
	return &csj.Community{Name: name, Users: users}
}

func TestTopKRanksOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pivot := entropyComm(rng, "pivot", 400, 10)
	cands := []*csj.Community{
		overlapped(rng, "low", 420, pivot, 0.05),
		overlapped(rng, "high", 450, pivot, 0.40),
		overlapped(rng, "mid", 430, pivot, 0.20),
		overlapped(rng, "zero", 410, pivot, 0.0),
	}
	top, err := csj.TopK(pivot, cands, 2, &csj.Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("got %d results, want 2", len(top))
	}
	if top[0].Name != "high" || top[1].Name != "mid" {
		t.Errorf("top-2 = %s, %s; want high, mid", top[0].Name, top[1].Name)
	}
	for _, r := range top {
		if r.Result == nil {
			t.Errorf("%s: top result must carry an exact refinement", r.Name)
		} else if r.Result.Method != csj.ExMinMax {
			t.Errorf("%s: refined with %v, want Ex-MinMax", r.Name, r.Result.Method)
		}
	}
	// Exact similarity is at least the approximate score.
	for _, r := range top {
		if r.Result.Similarity+1e-9 < r.ApproxSimilarity {
			t.Errorf("%s: exact %.4f below approximate %.4f", r.Name, r.Result.Similarity, r.ApproxSimilarity)
		}
	}
}

func TestTopKSkipsTinyCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pivot := entropyComm(rng, "pivot", 300, 6)
	tiny := entropyComm(rng, "tiny", 20, 6)
	ok := overlapped(rng, "ok", 320, pivot, 0.3)
	top, err := csj.TopK(pivot, []*csj.Community{tiny, ok}, 2, &csj.Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if top[0].Name != "ok" || top[0].Result == nil {
		t.Errorf("expected ok first with an exact result, got %+v", top[0])
	}
	if !top[1].Skipped {
		t.Errorf("expected tiny to be skipped, got %+v", top[1])
	}
}

func TestTopKValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	pivot := entropyComm(rng, "p", 50, 4)
	cand := entropyComm(rng, "c", 50, 4)
	if _, err := csj.TopK(nil, []*csj.Community{cand}, 1, nil); err == nil {
		t.Error("expected error for nil pivot")
	}
	if _, err := csj.TopK(pivot, nil, 1, nil); err == nil {
		t.Error("expected error for no candidates")
	}
	if _, err := csj.TopK(pivot, []*csj.Community{cand}, 0, nil); err == nil {
		t.Error("expected error for k = 0")
	}
}

func TestTopKLargerKThanCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	pivot := entropyComm(rng, "p", 100, 5)
	cands := []*csj.Community{
		overlapped(rng, "a", 110, pivot, 0.2),
		overlapped(rng, "b", 105, pivot, 0.1),
	}
	top, err := csj.TopK(pivot, cands, 10, &csj.Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("got %d results, want all 2", len(top))
	}
}

func TestPreparedCommunityFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	c := randComm(rng, "saved", 50, 6, 9)
	opts := &csj.Options{Epsilon: 1}
	pc, err := csj.Precompute(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.csjp")
	if err := csj.SavePreparedCommunity(path, pc); err != nil {
		t.Fatal(err)
	}
	back, err := csj.LoadPreparedCommunity(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "saved" || back.Size() != 50 {
		t.Fatalf("loaded metadata mismatch: %s/%d", back.Name(), back.Size())
	}
	other := randComm(rng, "other", 60, 6, 9)
	po, err := csj.Precompute(other, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := csj.SimilarityPrepared(pc, po, csj.ExMinMax, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := csj.SimilarityPrepared(back, po, csj.ExMinMax, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Similarity != want.Similarity {
		t.Errorf("loaded prepared join %.4f != original %.4f", got.Similarity, want.Similarity)
	}
	if _, err := csj.LoadPreparedCommunity(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("expected error for a missing file")
	}
}
